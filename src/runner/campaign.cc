#include "runner/campaign.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <future>
#include <iostream>
#include <memory>
#include <ostream>
#include <thread>

#include "common/logging.h"

namespace deca::runner {

namespace {

/** Far above any sane --threads/--jobs request, far below u32 wrap. */
constexpr unsigned long kMaxCount = 4096;

u32
parseCount(const std::string &flag, const std::string &v)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long n = std::strtoul(v.c_str(), &end, 10);
    if (v.empty() || v[0] == '-' || end == v.c_str() || *end != '\0' ||
        errno == ERANGE || n > kMaxCount)
        DECA_FATAL("bad ", flag, " value: ", v, " (expected 0..",
                   kMaxCount, ")");
    return n == 0 ? ThreadPool::hardwareThreads() : static_cast<u32>(n);
}

} // namespace

bool
parseCommonFlag(const std::string &arg, RunOptions &opts)
{
    if (arg.rfind("--threads=", 0) == 0) {
        opts.threads = parseCount(
            "--threads", arg.substr(std::strlen("--threads=")));
        return true;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
        opts.jobs =
            parseCount("--jobs", arg.substr(std::strlen("--jobs=")));
        return true;
    }
    if (arg.rfind("--pool-cap=", 0) == 0) {
        // Unlike --threads/--jobs, 0 is not a "pick for me" alias
        // here: RunOptions::poolCap == 0 means "flag absent, leave
        // the pool uncapped", so an explicit 0 is rejected — same
        // contract as the DECA_POOL_CAP environment variable.
        const std::string v = arg.substr(std::strlen("--pool-cap="));
        char *end = nullptr;
        errno = 0;
        const unsigned long n = std::strtoul(v.c_str(), &end, 10);
        if (v.empty() || v[0] == '-' || end == v.c_str() ||
            *end != '\0' || errno == ERANGE || n < 1 ||
            n > ThreadPool::kMaxWorkers)
            DECA_FATAL("bad --pool-cap value: ", v, " (expected 1..",
                       ThreadPool::kMaxWorkers, ")");
        opts.poolCap = static_cast<u32>(n);
        return true;
    }
    if (arg.rfind("--timeout-sec=", 0) == 0) {
        // 0 would mean "no watchdog", which is the flag-absent
        // default already; an explicit 0 is almost certainly a typo.
        const std::string v =
            arg.substr(std::strlen("--timeout-sec="));
        char *end = nullptr;
        errno = 0;
        const unsigned long n = std::strtoul(v.c_str(), &end, 10);
        if (v.empty() || v[0] == '-' || end == v.c_str() ||
            *end != '\0' || errno == ERANGE || n < 1 || n > 86400)
            DECA_FATAL("bad --timeout-sec value: ", v,
                       " (expected 1..86400 seconds)");
        opts.timeoutSec = static_cast<u32>(n);
        return true;
    }
    if (arg.rfind("--format=", 0) == 0) {
        const std::string v = arg.substr(std::strlen("--format="));
        const auto f = parseOutputFormat(v);
        if (!f)
            DECA_FATAL("bad --format value: ", v,
                       " (expected table|csv|json)");
        opts.format = *f;
        return true;
    }
    if (arg.rfind("--set=", 0) == 0) {
        try {
            opts.params.set(arg.substr(std::strlen("--set=")));
        } catch (const std::exception &e) {
            DECA_FATAL(e.what());
        }
        return true;
    }
    if (arg == "--progress") {
        opts.showProgress = true;
        return true;
    }
    return false;
}

namespace {

/** The un-watchdogged scenario execution (always runs to the end). */
ScenarioResult
runScenarioInner(const Scenario &s, const RunOptions &opts)
{
    if (opts.poolCap != 0)
        globalPool(0).setMaxWorkers(opts.poolCap);
    ResultBuilder builder(s.name, s.description);
    // Each invocation gets its own copy of the --set overrides: the
    // consumption marks are per-run, and `run all --jobs=N` executes
    // scenarios concurrently against the same RunOptions.
    ScenarioParams params = opts.params;
    ScenarioContext ctx;
    ctx.threads = opts.threads;
    ctx.showProgress = opts.showProgress;
    ctx.builder = &builder;
    ctx.setParams = &params;

    const auto t0 = std::chrono::steady_clock::now();
    int status = 0;
    std::string error;
    try {
        status = s.fn(ctx);
        if (status == 0) {
            const auto unknown = params.unconsumedKeys();
            if (!unknown.empty()) {
                status = 1;
                error = "unknown --set parameter(s) for " + s.name + ":";
                for (const std::string &k : unknown)
                    error += " " + k;
            }
        }
    } catch (const std::exception &e) {
        status = 1;
        error = e.what();
    } catch (...) {
        status = 1;
        error = "unknown exception";
    }
    const auto t1 = std::chrono::steady_clock::now();

    ScenarioResult r = builder.take(status);
    r.error = std::move(error);
    r.elapsedMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return r;
}

} // namespace

ScenarioResult
runScenario(const Scenario &s, const RunOptions &opts)
{
    if (opts.timeoutSec == 0)
        return runScenarioInner(s, opts);

    // Watchdog: run the body on its own thread and wait with a
    // budget. The promise outlives a timeout via the shared_ptr, and
    // the thread owns copies of everything it touches (the Scenario
    // itself is a registry/file-scope static), so an abandoned body
    // can finish harmlessly whenever it likes.
    auto prom = std::make_shared<std::promise<ScenarioResult>>();
    std::future<ScenarioResult> fut = prom->get_future();
    const auto t0 = std::chrono::steady_clock::now();
    const Scenario *sp = &s;
    std::thread([prom, sp, opts_copy = opts] {
        prom->set_value(runScenarioInner(*sp, opts_copy));
    }).detach();

    if (fut.wait_for(std::chrono::seconds(opts.timeoutSec)) ==
        std::future_status::ready)
        return fut.get();

    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    ScenarioResult r;
    r.name = s.name;
    r.description = s.description;
    r.status = 1;
    r.elapsedMs = elapsed_ms;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "watchdog: scenario still running after %.1f s "
                  "(--timeout-sec=%u); marking it failed",
                  elapsed_ms / 1e3, opts.timeoutSec);
    r.error = buf;
    return r;
}

namespace {

/**
 * Streams results in order, with per-format framing. Single-scenario
 * runs emit the bare result body in every format (matching the
 * standalone binaries); multi-scenario runs frame table/CSV output
 * with "### name" headers and wrap JSON in the run manifest.
 */
class CampaignEmitter
{
  public:
    CampaignEmitter(const RunOptions &opts, std::size_t count,
                    std::ostream &os)
        : opts_(opts), framed_(count > 1), os_(os)
    {
        if (manifest())
            os_ << "{\"schema\":\"decasim-run/1\",\"jobs\":"
                << opts_.jobs << ",\"threads\":" << opts_.threads
                << ",\"scenario_count\":" << count
                << ",\"scenarios\":[";
    }

    /** Emit one result; returns its status. */
    int
    emit(const ScenarioResult &r)
    {
        if (manifest()) {
            os_ << (emitted_++ ? ",\n" : "\n") << renderJson(r);
        } else {
            if (framed_)
                os_ << "### " << r.name << ": " << r.description
                    << "\n\n";
            renderResultBody(r, opts_.format, os_);
            if (framed_)
                os_ << "\n";
        }
        os_.flush();
        if (r.status != 0) {
            std::cerr << "decasim: scenario " << r.name
                      << " failed with exit code " << r.status;
            if (!r.error.empty())
                std::cerr << " (" << r.error << ")";
            std::cerr << "\n";
        }
        return r.status;
    }

    void
    close()
    {
        // "emitted" is stamped at the end because a failure stops
        // emission early: consumers must trust it, not
        // scenario_count (which records what was requested).
        if (manifest())
            os_ << "\n],\"emitted\":" << emitted_ << "}\n";
    }

  private:
    bool manifest() const
    {
        return framed_ && opts_.format == OutputFormat::Json;
    }

    const RunOptions &opts_;
    bool framed_;
    std::ostream &os_;
    std::size_t emitted_ = 0;
};

} // namespace

int
runScenarios(const std::vector<const Scenario *> &todo,
             const RunOptions &opts, std::ostream &os)
{
    CampaignEmitter emitter(opts, todo.size(), os);
    int rc = 0;

    if (opts.jobs <= 1 || todo.size() <= 1) {
        // One at a time, stopping at the first failure — the behavior
        // jobs > 1 reproduces byte-for-byte on the output stream.
        for (const Scenario *s : todo) {
            rc = emitter.emit(runScenario(*s, opts));
            if (rc != 0)
                break;
        }
        emitter.close();
        return rc;
    }

    // Fan whole scenarios out on the shared pool; results are buffered
    // objects, so emission can stay in registry order while execution
    // completes in any order. Submission is windowed: at most
    // opts.jobs scenarios are in flight (submitted but not yet
    // harvested) at a time — the pool may have more workers (grown by
    // --threads or earlier callers), and an unwindowed submit would
    // let them all steal scenario tasks, ignoring the --jobs bound.
    const u32 window = static_cast<u32>(
        std::min<std::size_t>(opts.jobs, todo.size()));
    if (opts.poolCap != 0)
        globalPool(0).setMaxWorkers(opts.poolCap);
    ThreadPool &pool = globalPool(std::max(window, 2u));
    std::vector<std::future<ScenarioResult>> futs(todo.size());
    std::size_t next = 0;
    auto submitNext = [&] {
        if (next >= todo.size())
            return;
        const Scenario *s = todo[next];
        futs[next] =
            pool.submit([s, &opts] { return runScenario(*s, opts); });
        ++next;
    };
    for (u32 k = 0; k < window; ++k)
        submitNext();

    for (std::size_t i = 0; i < todo.size(); ++i) {
        if (!futs[i].valid())
            break;  // submission stopped after a failure
        pool.helpWait(futs[i]);
        const ScenarioResult r = futs[i].get();
        if (rc != 0)
            continue;  // drain already-submitted tasks silently
        rc = emitter.emit(r);
        if (rc == 0)
            submitNext();  // keep the window full while healthy
    }
    emitter.close();
    return rc;
}

int
standaloneScenarioMain(int argc, char **argv)
{
    const ScenarioRegistry &reg = ScenarioRegistry::instance();
    DECA_ASSERT(reg.size() == 1,
                "standalone binary must link exactly one scenario, has ",
                reg.size());
    const Scenario *s = reg.sorted().front();

    RunOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::cout << s->name << ": " << s->description << "\n"
                      << "usage: " << argv[0]
                      << " [--threads=N] [--timeout-sec=N]"
                         " [--format=table|csv|json]"
                         " [--set key=value] [--progress]\n";
            return 0;
        }
        if (arg == "--set") {
            if (i + 1 >= argc)
                DECA_FATAL("--set needs a key=value argument");
            const std::string kv = argv[++i];
            if (!parseCommonFlag("--set=" + kv, opts))
                DECA_FATAL("bad --set argument: ", kv);
            continue;
        }
        // --jobs is scenario-level concurrency; with exactly one
        // scenario it would be a silent no-op, so reject it rather
        // than let a --threads typo degrade to serial unnoticed.
        if (arg.rfind("--jobs=", 0) == 0)
            DECA_FATAL("--jobs only applies to `decasim run` with "
                       "multiple scenarios; use --threads=N here");
        if (!parseCommonFlag(arg, opts))
            DECA_FATAL("unknown argument: ", arg);
    }

    const ScenarioResult r = runScenario(*s, opts);
    renderResultBody(r, opts.format, std::cout);
    if (r.status != 0 && !r.error.empty())
        std::cerr << s->name << ": " << r.error << "\n";
    return r.status;
}

} // namespace deca::runner
