#include "runner/scenario_params.h"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace deca::runner {

namespace {

[[noreturn]] void
badValue(const std::string &key, const std::string &value,
         const char *expected)
{
    throw std::runtime_error("--set " + key + "=" + value +
                             ": expected " + expected);
}

} // namespace

void
ScenarioParams::set(const std::string &kv)
{
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos || eq == 0)
        throw std::runtime_error("--set expects key=value, got '" + kv +
                                 "'");
    set(kv.substr(0, eq), kv.substr(eq + 1));
}

void
ScenarioParams::set(std::string key, std::string value)
{
    const auto [it, inserted] =
        params_.emplace(std::move(key), Entry{std::move(value), false});
    if (!inserted)
        throw std::runtime_error("--set " + it->first +
                                 " given more than once");
}

const ScenarioParams::Entry *
ScenarioParams::lookup(const std::string &key) const
{
    const auto it = params_.find(key);
    if (it == params_.end())
        return nullptr;
    it->second.consumed = true;
    return &it->second;
}

bool
ScenarioParams::has(const std::string &key) const
{
    return params_.count(key) != 0;
}

u64
ScenarioParams::getU64(const std::string &key, u64 fallback) const
{
    const Entry *e = lookup(key);
    if (!e)
        return fallback;
    const std::string &v = e->value;
    char *end = nullptr;
    errno = 0;
    const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
    if (v.empty() || v[0] == '-' || end == v.c_str() || *end != '\0' ||
        errno == ERANGE)
        badValue(key, v, "a non-negative integer");
    return n;
}

u32
ScenarioParams::getU32(const std::string &key, u32 fallback) const
{
    const u64 n = getU64(key, fallback);
    if (n > std::numeric_limits<u32>::max())
        badValue(key, params_.at(key).value, "a 32-bit integer");
    return static_cast<u32>(n);
}

double
ScenarioParams::getDouble(const std::string &key, double fallback) const
{
    const Entry *e = lookup(key);
    if (!e)
        return fallback;
    const std::string &v = e->value;
    char *end = nullptr;
    errno = 0;
    const double d = std::strtod(v.c_str(), &end);
    if (v.empty() || end == v.c_str() || *end != '\0' || errno == ERANGE)
        badValue(key, v, "a number");
    return d;
}

bool
ScenarioParams::getBool(const std::string &key, bool fallback) const
{
    const Entry *e = lookup(key);
    if (!e)
        return fallback;
    const std::string &v = e->value;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    badValue(key, v, "a boolean (1/0, true/false, yes/no, on/off)");
}

std::string
ScenarioParams::getString(const std::string &key,
                          const std::string &fallback) const
{
    const Entry *e = lookup(key);
    return e ? e->value : fallback;
}

std::vector<std::string>
ScenarioParams::unconsumedKeys() const
{
    std::vector<std::string> keys;
    for (const auto &[key, entry] : params_)
        if (!entry.consumed)
            keys.push_back(key);
    return keys;
}

} // namespace deca::runner
