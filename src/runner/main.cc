/**
 * @file
 * decasim: one CLI over every paper figure/table bench and example,
 * registered as named scenarios and executed through the parallel
 * experiment runner.
 *
 *   decasim list
 *   decasim run fig16 --threads=8
 *   decasim run all --jobs=4 --format=json
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "runner/campaign.h"

namespace {

using namespace deca::runner;

int
usage(int code)
{
    std::cout <<
        "decasim — DECA paper-reproduction experiment runner\n"
        "\n"
        "usage:\n"
        "  decasim list                 list registered scenarios\n"
        "  decasim run <name>... [opts] run one or more scenarios\n"
        "  decasim run all [opts]       run every scenario\n"
        "\n"
        "options:\n"
        "  --threads=N   sweep worker threads inside a scenario\n"
        "                (0 = all hardware threads; default 1)\n"
        "  --jobs=N      scenarios executing concurrently (0 = all\n"
        "                hardware threads; default 1); results are\n"
        "                still emitted in order, byte-identical to\n"
        "                --jobs=1\n"
        "  --format=F    table | csv | json (default table); json is\n"
        "                a lossless manifest of every scenario's\n"
        "                prose, tables, status, and timing\n"
        "  --pool-cap=N  cap the process-wide worker pool at N\n"
        "                threads (env: DECA_POOL_CAP; idle workers\n"
        "                reap after DECA_POOL_IDLE_MS of quiescence)\n"
        "  --timeout-sec=N  per-scenario watchdog: a scenario still\n"
        "                running after N seconds is marked failed\n"
        "                with elapsed-time diagnostics instead of\n"
        "                hanging the campaign (default: none)\n"
        "  --set k=v     typed per-scenario parameter override\n"
        "                (repeatable; scenarios document their keys,\n"
        "                unknown keys fail the run)\n"
        "  --progress    draw sweep progress on stderr\n";
    return code;
}

int
list()
{
    const auto scenarios = ScenarioRegistry::instance().sorted();
    std::size_t width = 0;
    for (const Scenario *s : scenarios)
        width = std::max(width, s->name.size());
    for (const Scenario *s : scenarios)
        std::printf("%-*s  %s\n", static_cast<int>(width),
                    s->name.c_str(), s->description.c_str());
    return 0;
}

int
run(const std::vector<std::string> &args)
{
    RunOptions opts;
    std::vector<std::string> names;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        // `--set key=value` (two tokens) sugar for `--set=key=value`.
        if (arg == "--set") {
            if (i + 1 >= args.size()) {
                std::cerr << "decasim: --set needs a key=value\n";
                return usage(2);
            }
            if (!parseCommonFlag("--set=" + args[++i], opts))
                return usage(2);
            continue;
        }
        if (parseCommonFlag(arg, opts))
            continue;
        if (arg.rfind("--", 0) == 0) {
            std::cerr << "decasim: unknown option " << arg << "\n";
            return usage(2);
        }
        names.push_back(arg);
    }
    if (names.empty()) {
        std::cerr << "decasim: run needs at least one scenario name\n";
        return usage(2);
    }

    const ScenarioRegistry &reg = ScenarioRegistry::instance();
    std::vector<const Scenario *> todo;
    if (names.size() == 1 && names[0] == "all") {
        todo = reg.sorted();
    } else {
        for (const std::string &n : names) {
            const Scenario *s = reg.find(n);
            if (!s) {
                std::cerr << "decasim: unknown scenario '" << n
                          << "' (try `decasim list`)\n";
                return 2;
            }
            todo.push_back(s);
        }
    }

    return runScenarios(todo, opts, std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage(2);
    const std::string &cmd = args[0];
    if (cmd == "--help" || cmd == "-h" || cmd == "help")
        return usage(0);
    if (cmd == "list")
        return list();
    if (cmd == "run")
        return run({args.begin() + 1, args.end()});
    std::cerr << "decasim: unknown command '" << cmd << "'\n";
    return usage(2);
}
