/**
 * @file
 * Compressed-GeMM workloads for the cycle-level simulation.
 *
 * The paper's GeMM benchmark streams ~250M-parameter FC weight matrices
 * with no reuse, so steady-state tile throughput is independent of matrix
 * size. We therefore synthesize a pool of compressed tiles from a real
 * (pruned, quantized) weight matrix and let each core stream a configured
 * number of tiles from the pool; timing-relevant per-tile properties
 * (byte counts, bitmask window statistics) are exactly those of the
 * underlying matrix.
 */

#ifndef DECA_KERNELS_WORKLOAD_H
#define DECA_KERNELS_WORKLOAD_H

#include <vector>

#include "common/rng.h"
#include "compress/weight_matrix.h"

namespace deca::kernels {

/** A pool of compressed tiles drawn from one weight matrix. */
class TilePool
{
  public:
    /**
     * Build a pool of `num_tiles` tiles compressed under `scheme`, from a
     * synthetic Gaussian matrix pruned to the scheme's density.
     */
    TilePool(const compress::CompressionScheme &scheme, u32 num_tiles,
             u64 seed);

    const compress::CompressionScheme &scheme() const { return scheme_; }
    u32 size() const { return static_cast<u32>(tiles_.size()); }

    const compress::CompressedTile &
    tile(u32 i) const
    {
        return tiles_[i % tiles_.size()];
    }

    /** Compressed bytes of pool tile i. */
    u64
    tileBytes(u32 i) const
    {
        return tiles_[i % tiles_.size()].totalBytes();
    }

    /** Mean compressed bytes per tile over the pool. */
    double meanTileBytes() const;

  private:
    compress::CompressionScheme scheme_;
    std::vector<compress::CompressedTile> tiles_;
};

/** One compressed-GeMM measurement workload. */
struct GemmWorkload
{
    compress::CompressionScheme scheme;
    /** Batch size N (affects reported FLOPS, not tile timing). */
    u32 batchN = 1;
    /** Tiles each core processes during the measured run. */
    u32 tilesPerCore = 256;
    /** Distinct tiles in the pool (content statistics source). */
    u32 poolTiles = 64;
    u64 seed = 0x5eed;
};

} // namespace deca::kernels

#endif // DECA_KERNELS_WORKLOAD_H
