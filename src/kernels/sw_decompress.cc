#include "kernels/sw_decompress.h"

#include "common/logging.h"
#include "common/mx_scale.h"
#include "compress/bitpack.h"
#include "compress/quantizer.h"

namespace deca::kernels {

using compress::CompressedTile;
using compress::CompressionScheme;
using compress::DenseTile;
using compress::ElemFormat;

namespace {

/** Number of weights in one output row (one 512-bit register). */
constexpr u32 kRowElems = kTileCols;

/** Count helper that tolerates a null sink. */
struct Counter
{
    AvxOpCounts *c;
    void load(u32 n = 1) { if (c) c->loads += n; }
    void store(u32 n = 1) { if (c) c->stores += n; }
    void mask(u32 n = 1) { if (c) c->masks += n; }
    void expand(u32 n = 1) { if (c) c->expands += n; }
    void convert(u32 n = 1) { if (c) c->converts += n; }
    void permute(u32 n = 1) { if (c) c->permutes += n; }
    void arith(u32 n = 1) { if (c) c->arith += n; }
};

} // namespace

DenseTile
swDecompressTile(const CompressedTile &ct, AvxOpCounts *counts)
{
    const CompressionScheme &s = ct.scheme;
    const bool sparse = s.sparse();
    const u32 qbits = s.quantBits();
    Counter ops{counts};
    DenseTile out;

    compress::BitUnpacker unpacker(ct.data);

    // Uncompressed BF16 tiles are never routed through the AVX
    // sequence at all — the AMX tload reads them straight from memory —
    // so the functional copy below counts zero vector operations.
    const bool needs_avx_sequence =
        sparse || s.format != ElemFormat::BF16;

    for (u32 row = 0; row < kTileRows; ++row) {
        const u32 base = row * kRowElems;

        // -- Gather this row's nonzero codes (the compressed chunk the
        //    row's vector load covers).
        u32 row_nz = kRowElems;
        if (sparse)
            row_nz = ct.bitmask.popcountWindow(base, kRowElems);

        // Load of the compressed data chunk for this row.
        if (needs_avx_sequence)
            ops.load();

        std::array<float, kRowElems> vals{};
        for (u32 k = 0; k < row_nz; ++k) {
            const u32 code = unpacker.next(qbits);
            vals[k] = compress::dequantizeCode(code, s);
        }

        // -- Format-specific widening/dequantization work.
        switch (s.format) {
          case ElemFormat::BF16:
            // 16-bit elements are already BF16; no conversion ops.
            break;
          case ElemFormat::BF8:
          case ElemFormat::FP8_E4M3:
            // Byte -> BF16 widen: permute-based exponent rebias plus a
            // shift/insert (two AVX ops on SPR).
            ops.convert(2);
            break;
          case ElemFormat::FP6_E3M2:
          case ElemFormat::FP6_E2M3:
            // 6-bit codes straddle byte boundaries: two shifts plus an
            // or-merge plus a lane realign, then the double vpermb
            // lookup, then the final merge.
            ops.arith(4);
            ops.permute(2);
            ops.arith(1);
            break;
          case ElemFormat::FP4_E2M1:
            // Nibble split (shift + mask) and two vpermb LUT lookups
            // plus a merge.
            ops.arith(2);
            ops.permute(2);
            ops.arith(1);
            break;
        }

        // -- Expansion (only for sparse schemes): mask chunk move plus
        //    the masked expand, plus popcount/pointer advance for the
        //    nonzero cursor and the mask cursor.
        std::array<float, kRowElems> dense{};
        if (sparse) {
            ops.mask();    // kmov of this row's 32 mask bits
            ops.expand();  // vpexpandw/b
            u32 k = 0;
            for (u32 j = 0; j < kRowElems; ++j) {
                if (ct.bitmask.get(base + j))
                    dense[j] = vals[k++];
            }
            DECA_ASSERT(k == row_nz, "row expand consumed wrong count");
            // popcnt + pointer bookkeeping; byte formats need a second
            // cursor update for the sub-byte packing.
            ops.arith(s.format == ElemFormat::BF16 ? 1 : 2);
        } else {
            for (u32 j = 0; j < kRowElems; ++j)
                dense[j] = vals[j];
        }

        // -- MX group scaling: load/broadcast the scale(s) covering this
        //    row, convert E8M0 to a multiplicand, multiply.
        if (s.groupQuant) {
            ops.load();     // scale-factor load/broadcast
            ops.arith(1);   // e8m0 -> fp32 exponent insert
            ops.arith(1);   // vector multiply (fp32)
            ops.convert(1); // fp32 -> BF16 downconvert of the product
            for (u32 j = 0; j < kRowElems; ++j) {
                const u32 group = (base + j) / s.groupSize;
                dense[j] *= e8m0Decode(ct.scales[group]);
            }
        }

        // -- Store the finished row into the L1 software buffer, plus
        //    the scalar loop-control overhead that occupies an issue
        //    slot per row.
        if (needs_avx_sequence) {
            ops.store();
            ops.arith(1);
        }
        for (u32 j = 0; j < kRowElems; ++j) {
            const float v = dense[j];
            out[base + j] = v == 0.0f ? Bf16() : Bf16::fromFloat(v);
        }
    }
    return out;
}

AvxOpCounts
swOpCountsPerRow(const CompressionScheme &scheme)
{
    // Derive by running one representative tile and dividing: the ops
    // per row are identical across rows (masked expands process whole
    // rows regardless of density).
    DenseTile t;
    for (u32 i = 0; i < kTileElems; ++i) {
        // Simple deterministic pattern at roughly the scheme's density.
        const bool keep =
            !scheme.sparse() ||
            (i * 2654435761u % 1000) < scheme.density * 1000;
        if (keep)
            t[i] = Bf16::fromFloat(0.5f + (i % 7) * 0.25f);
    }
    const CompressedTile ct = compress::compressTile(t, scheme);
    AvxOpCounts counts;
    swDecompressTile(ct, &counts);

    AvxOpCounts per_row;
    per_row.loads = counts.loads / kTileRows;
    per_row.stores = counts.stores / kTileRows;
    per_row.masks = counts.masks / kTileRows;
    per_row.expands = counts.expands / kTileRows;
    per_row.converts = counts.converts / kTileRows;
    per_row.permutes = counts.permutes / kTileRows;
    per_row.arith = counts.arith / kTileRows;
    return per_row;
}

} // namespace deca::kernels
