#include "kernels/workload.h"

#include "common/logging.h"

namespace deca::kernels {

TilePool::TilePool(const compress::CompressionScheme &scheme, u32 num_tiles,
                   u64 seed)
    : scheme_(scheme)
{
    DECA_ASSERT(num_tiles >= 1, "pool needs at least one tile");
    // One tall matrix column of tiles gives num_tiles distinct tiles.
    Rng rng(seed);
    const u32 rows = num_tiles * kTileRows;
    compress::WeightMatrix w =
        compress::generateWeights(rows, kTileCols, scheme.density, rng);
    compress::CompressedMatrix cm(w, scheme);
    tiles_.reserve(cm.numTiles());
    for (u32 tr = 0; tr < cm.tileRows(); ++tr)
        tiles_.push_back(cm.tile(tr, 0));
}

double
TilePool::meanTileBytes() const
{
    u64 total = 0;
    for (const auto &t : tiles_)
        total += t.totalBytes();
    return static_cast<double>(total) / static_cast<double>(tiles_.size());
}

} // namespace deca::kernels
