#include "kernels/kernel_config.h"

#include <sstream>

namespace deca::kernels {

std::string
DecaIntegration::describe() const
{
    std::ostringstream os;
    os << (readsL2 ? "+ReadsL2" : "LLC-direct");
    os << (decaPrefetcher ? " +DecaPF" : "");
    os << (toutRegs ? " +TOutRegs" : " via-L2");
    os << (invocation == Invocation::Tepl ? " +TEPL" : " store+fence");
    return os.str();
}

std::string
KernelConfig::describe() const
{
    switch (engine) {
      case Engine::None:
        return "uncompressed-bf16";
      case Engine::Software:
        switch (vectorScaling) {
          case VectorScaling::Standard:
            return "software";
          case VectorScaling::MoreUnits:
            return "software-4x-avx-units";
          case VectorScaling::WiderUnits:
            return "software-avx2048";
        }
        return "software";
      case Engine::Deca: {
        std::ostringstream os;
        os << "deca{W=" << deca.w << ",L=" << deca.l << "} "
           << integration.describe();
        return os.str();
      }
    }
    return "?";
}

} // namespace deca::kernels
