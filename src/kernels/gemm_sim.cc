#include "kernels/gemm_sim.h"

#include <algorithm>

#include "common/logging.h"
#include "kernels/sw_cost_model.h"

namespace deca::kernels {

using sim::Delay;
using sim::FetchStream;
using sim::FetchStreamConfig;
using sim::PrefetchPolicy;
using sim::Semaphore;
using sim::Signal;
using sim::SimTask;

/** Per-core simulation state: resources, signals, and the fetch stream. */
struct GemmSimulation::Core
{
    Core(sim::EventQueue &q, u32 id, u32 num_tiles, u32 num_loaders)
        : tmul(q, "tmul" + std::to_string(id)),
          avx(q, "avx" + std::to_string(id)),
          deca(q, "deca" + std::to_string(id)), bufSlots(q, 2),
          readyTiles(q, 0), teplSlots(q, num_loaders)
    {
        invoked.reserve(num_tiles);
        dataReady.reserve(num_tiles);
        tileDone.reserve(num_tiles);
        tregReady.reserve(num_tiles);
        for (u32 t = 0; t < num_tiles; ++t) {
            invoked.push_back(std::make_unique<Signal>(q));
            dataReady.push_back(std::make_unique<Signal>(q));
            tileDone.push_back(std::make_unique<Signal>(q));
            tregReady.push_back(std::make_unique<Signal>(q));
        }
    }

    /** Software engines use one stream; the DECA engine has one stream
     *  per Loader (even/odd tiles) so the dual Loaders overlap their
     *  fetches exactly as the hardware double-buffering does. */
    std::unique_ptr<FetchStream> stream;
    std::unique_ptr<FetchStream> loaderStream[2];

    sim::BusyResource tmul;
    sim::BusyResource avx;
    sim::BusyResource deca;

    /** Double software buffer (libxsmm) / tile-register slots. */
    Semaphore bufSlots;
    /** Decompressed tiles waiting for the AMX loop. */
    Semaphore readyTiles;
    /** TEPL structural hazard: one slot per DECA Loader (Sec. 5.3). */
    Semaphore teplSlots;

    /** Per-tile lifecycle events of the DECA path. */
    std::vector<std::unique_ptr<Signal>> invoked;
    std::vector<std::unique_ptr<Signal>> dataReady;
    std::vector<std::unique_ptr<Signal>> tileDone;
    std::vector<std::unique_ptr<Signal>> tregReady;
};

GemmSimulation::GemmSimulation(const sim::SimParams &params,
                               const KernelConfig &config,
                               const GemmWorkload &workload,
                               const TilePool &pool)
    : params_(params), config_(config), workload_(workload), pool_(pool)
{
    DECA_ASSERT(pool.scheme().name == workload.scheme.name,
                "pool was built for a different scheme");

    mem_ = std::make_unique<sim::MemorySystem>(q_, params_.memConfig());

    if (config_.engine == Engine::Deca) {
        accel::DecaPipeline pipeline(config_.deca);
        pipeline.configure(workload_.scheme);
        deca_cycles_.reserve(pool_.size());
        for (u32 i = 0; i < pool_.size(); ++i)
            deca_cycles_.push_back(pipeline.tileCycles(pool_.tile(i)));
    } else if (config_.engine == Engine::Software) {
        sw_cycles_ = swDecompressCycles(workload_.scheme,
                                        config_.vectorScaling, params_);
    }
}

GemmSimulation::~GemmSimulation() = default;

u32
GemmSimulation::poolIndex(u32 c, u32 t) const
{
    // Offset each core into the pool so cores do not process identical
    // tile sequences in lockstep.
    return (c * 17 + t) % pool_.size();
}

u64
GemmSimulation::tileBytes(u32 c, u32 t) const
{
    return pool_.tileBytes(poolIndex(c, t));
}

Cycles
GemmSimulation::decaTileCycles(u32 c, u32 t) const
{
    return deca_cycles_[poolIndex(c, t)];
}

Cycles
GemmSimulation::outputReadLatency() const
{
    if (config_.integration.toutRegs)
        return params_.decaToCoreRead;
    // Without TOut registers the tile takes the longer path through the
    // L2: the core's tload hits the L2 where DECA deposited it.
    return params_.l2Latency + params_.tloadL1Cycles;
}

void
GemmSimulation::coreFinished()
{
    ++cores_done_;
}

// ---------------------------------------------------------------------
// Software / uncompressed kernels (Fig. 2 structure)
// ---------------------------------------------------------------------

SimTask
GemmSimulation::swDecompressProc(u32 c)
{
    Core &pc = *cores_[c];
    for (u32 t = 0; t < workload_.tilesPerCore; ++t) {
        // Wait for a free half of the double software buffer.
        co_await pc.bufSlots.acquire();
        // Compressed bytes must have arrived from memory.
        co_await pc.stream->fetch(tileBytes(c, t));
        // The AVX decompression sequence for this tile, plus the scalar
        // loop bookkeeping that is not hidden by the vector work.
        if (sw_cycles_ > 0) {
            co_await pc.avx.busy(sw_cycles_);
            co_await Delay(q_, params_.swTileOverhead);
        }
        pc.readyTiles.release();
    }
}

SimTask
GemmSimulation::swGemmProc(u32 c)
{
    Core &pc = *cores_[c];
    for (u32 t = 0; t < workload_.tilesPerCore; ++t) {
        co_await pc.readyTiles.acquire();
        // tload from the L1-resident buffer overlaps with the previous
        // TComp under out-of-order execution; the TMUL occupancy is the
        // serializing resource.
        co_await pc.tmul.busy(params_.tmulCycles);
        pc.bufSlots.release();
    }
    coreFinished();
}

// ---------------------------------------------------------------------
// DECA kernels (Secs. 5.2-5.3)
// ---------------------------------------------------------------------

SimTask
GemmSimulation::decaFeedProc(u32 c, u32 loader)
{
    // Each Loader handles alternating tiles with its own LDQ/prefetch
    // stream, so the fetch of tile t+1 overlaps the fetch and
    // processing of tile t even without a prefetcher (hardware double
    // buffering, Fig. 8).
    Core &pc = *cores_[c];
    const u32 stride = config_.integration.numLoaders;
    for (u32 t = loader; t < workload_.tilesPerCore; t += stride) {
        // A Loader starts fetching when its control register is written.
        co_await pc.invoked[t]->wait();
        co_await pc.loaderStream[loader]->fetch(tileBytes(c, t));
        pc.dataReady[t]->set();
    }
}

SimTask
GemmSimulation::decaPeProc(u32 c)
{
    Core &pc = *cores_[c];
    const bool via_l2 = !config_.integration.toutRegs;
    for (u32 t = 0; t < workload_.tilesPerCore; ++t) {
        co_await pc.dataReady[t]->wait();
        Cycles cycles = decaTileCycles(c, t);
        // Without TOut registers the PE must also push the 16 output
        // lines of the decompressed tile into the L2.
        if (via_l2)
            cycles += kTileRows;
        co_await pc.deca.busy(cycles);
        pc.tileDone[t]->set();
    }
}

SimTask
GemmSimulation::decaTransferProc(u32 c)
{
    // TOut -> tile-register transfer: the completion leg of a TEPL. It
    // proceeds independently of the AMX loop, so consecutive transfers
    // overlap with TComp execution (this is what hides the
    // communication latency, Sec. 5.3).
    Core &pc = *cores_[c];
    for (u32 t = 0; t < workload_.tilesPerCore; ++t) {
        co_await pc.tileDone[t]->wait();
        co_await Delay(q_, outputReadLatency());
        pc.tregReady[t]->set();
        pc.teplSlots.release();  // the Loader/TOut pair is free again
    }
}

SimTask
GemmSimulation::teplIssueProc(u32 c)
{
    Core &pc = *cores_[c];
    for (u32 t = 0; t < workload_.tilesPerCore; ++t) {
        // Structural hazard: at most #Loaders TEPLs in flight.
        co_await pc.teplSlots.acquire();
        // The metadata store reaches the Loader after the link latency;
        // issue is speculative and out-of-order, so the issuing core
        // does not stall.
        Signal *sig = pc.invoked[t].get();
        q_.schedule(
            params_.coreToDecaStore,
            [](void *s, u64) { static_cast<Signal *>(s)->set(); }, sig);
    }
}

SimTask
GemmSimulation::teplGemmProc(u32 c)
{
    Core &pc = *cores_[c];
    for (u32 t = 0; t < workload_.tilesPerCore; ++t) {
        co_await pc.tregReady[t]->wait();
        co_await pc.tmul.busy(params_.tmulCycles);
    }
    coreFinished();
}

SimTask
GemmSimulation::storeFenceCoreProc(u32 c)
{
    // Figure 9: every iteration executes ST M(i+1); Fence; TLoad T(i);
    // TComp serially — the fence and the ROB-head store expose the full
    // core-DECA communication latency each iteration.
    Core &pc = *cores_[c];
    const u32 total = workload_.tilesPerCore;

    // Preamble: prime each Loader (ST M0; Fence; ST M1; Fence; ...).
    const u32 loaders = config_.integration.numLoaders;
    for (u32 k = 0; k < std::min<u32>(loaders, total); ++k) {
        co_await Delay(q_, params_.coreToDecaStore);
        pc.invoked[k]->set();
        co_await Delay(q_, params_.fenceCycles);
    }

    for (u32 t = 0; t < total; ++t) {
        co_await pc.tileDone[t]->wait();
        // TLoad from TOut (or via the L2) executes at the ROB head.
        co_await Delay(q_, outputReadLatency());
        co_await pc.tmul.busy(params_.tmulCycles);
        if (t + loaders < total) {
            co_await Delay(q_, params_.coreToDecaStore);
            pc.invoked[t + loaders]->set();
            co_await Delay(q_, params_.fenceCycles);
        }
    }
    coreFinished();
}

// ---------------------------------------------------------------------
// Run orchestration
// ---------------------------------------------------------------------

GemmResult
GemmSimulation::run()
{
    const u32 n_cores = params_.cores;
    const u32 tiles = workload_.tilesPerCore;

    // Per-core total stream length.
    cores_.clear();
    cores_.reserve(n_cores);
    for (u32 c = 0; c < n_cores; ++c) {
        const u32 loaders = config_.engine == Engine::Deca
                                ? config_.integration.numLoaders
                                : 2;
        auto core = std::make_unique<Core>(q_, c, tiles, loaders);

        FetchStreamConfig fc;
        fc.mshrs = params_.l2Mshrs;
        fc.prefetchLines = params_.l2PrefetchLines;
        fc.boundedAcceptance = params_.memAcceptDepth != 0;
        if (config_.engine == Engine::Deca) {
            const auto &integ = config_.integration;
            if (integ.decaPrefetcher) {
                fc.policy = PrefetchPolicy::DecaPf;
                fc.onChipLatency = params_.l2Latency + params_.llcLatency;
            } else if (integ.readsL2) {
                // The generic L2 stream prefetcher sees a Loader's
                // interleaved nonzero/bitmask/scale accesses as broken
                // streams, so its effective lookahead is weaker than on
                // a pure sequential stream — the reason DECA carries
                // its own prefetcher (Sec. 6.1).
                fc.policy = PrefetchPolicy::L2Stream;
                fc.prefetchLines = std::max<u32>(
                    1, params_.l2PrefetchLines / 2);
                fc.onChipLatency = params_.l2Latency + params_.llcLatency;
            } else {
                // Base: read straight from the LLC, no prefetcher.
                fc.policy = PrefetchPolicy::None;
                fc.onChipLatency = params_.llcLatency;
            }
        } else {
            // Cores always read through their L2 with the stream
            // prefetcher enabled; on long streams the prefetcher ramps
            // its degree with the demand footprint.
            fc.policy = PrefetchPolicy::L2Stream;
            fc.onChipLatency = params_.l2Latency + params_.llcLatency;
            const double mean_lines = pool_.meanTileBytes() /
                                      kCacheLineBytes;
            fc.prefetchLines = std::max<u32>(
                params_.l2PrefetchLines,
                static_cast<u32>(2.0 * mean_lines));
        }

        if (config_.engine == Engine::Deca) {
            // One stream per Loader over its (even or odd) tile
            // subsequence; the Loaders split the L2 MSHR budget.
            fc.mshrs = std::max<u32>(1, fc.mshrs / loaders);
            for (u32 lid = 0; lid < loaders; ++lid) {
                u64 bytes = 0;
                for (u32 t = lid; t < tiles; t += loaders)
                    bytes += tileBytes(c, t);
                core->loaderStream[lid] =
                    std::make_unique<FetchStream>(q_, *mem_, fc, bytes);
            }
        } else {
            u64 total_bytes = 0;
            for (u32 t = 0; t < tiles; ++t)
                total_bytes += tileBytes(c, t);
            core->stream = std::make_unique<FetchStream>(q_, *mem_, fc,
                                                         total_bytes);
        }
        cores_.push_back(std::move(core));
    }

    cores_done_ = 0;
    for (u32 c = 0; c < n_cores; ++c) {
        switch (config_.engine) {
          case Engine::None:
          case Engine::Software:
            swDecompressProc(c);
            swGemmProc(c);
            break;
          case Engine::Deca:
            for (u32 lid = 0; lid < config_.integration.numLoaders; ++lid)
                decaFeedProc(c, lid);
            decaPeProc(c);
            if (config_.integration.invocation == Invocation::Tepl) {
                decaTransferProc(c);
                teplIssueProc(c);
                teplGemmProc(c);
            } else {
                storeFenceCoreProc(c);
            }
            break;
        }
    }

    const Cycles end = q_.run();
    DECA_ASSERT(cores_done_ == n_cores, "a core did not finish its work");

    GemmResult r;
    r.kernel = config_.describe();
    r.schemeName = workload_.scheme.name;
    r.batchN = workload_.batchN;
    r.cycles = end;
    r.tilesProcessed = u64{n_cores} * tiles;

    const double seconds = static_cast<double>(end) / params_.freqHz();
    r.tilesPerSecond = static_cast<double>(r.tilesProcessed) / seconds;
    r.tflops = kFmasPerTileOpPerBatchRow *
               static_cast<double>(workload_.batchN) * r.tilesPerSecond /
               kTera;

    // Component utilizations over the whole run (busy snapshot at the
    // window start is zero since the run starts at cycle 0).
    r.utilMem = mem_->utilization(0.0, end);
    u64 tmul_busy = 0;
    u64 avx_busy = 0;
    u64 deca_busy = 0;
    for (const auto &core : cores_) {
        tmul_busy += core->tmul.busyCycles();
        avx_busy += core->avx.busyCycles();
        deca_busy += core->deca.busyCycles();
    }
    const double core_cycles = static_cast<double>(end) * n_cores;
    r.utilTmul = static_cast<double>(tmul_busy) / core_cycles;
    // Each AVX "busy cycle" occupies the core's SIMD issue, normalized
    // to the full vector engine (all units).
    r.utilVec = static_cast<double>(avx_busy) / core_cycles;
    r.utilDeca = static_cast<double>(deca_busy) / core_cycles;
    return r;
}

GemmResult
runGemm(const sim::SimParams &params, const KernelConfig &config,
        const GemmWorkload &workload)
{
    TilePool pool(workload.scheme, workload.poolTiles, workload.seed);
    GemmSimulation sim(params, config, workload, pool);
    return sim.run();
}

GemmResult
runGemmSteady(const sim::SimParams &params, const KernelConfig &config,
              const GemmWorkload &workload, u32 warmup_tiles)
{
    TilePool pool(workload.scheme, workload.poolTiles, workload.seed);

    GemmWorkload full = workload;
    full.tilesPerCore = workload.tilesPerCore + warmup_tiles;
    GemmWorkload warm = workload;
    warm.tilesPerCore = warmup_tiles;

    GemmSimulation sim_full(params, config, full, pool);
    GemmResult a = sim_full.run();
    GemmSimulation sim_warm(params, config, warm, pool);
    GemmResult b = sim_warm.run();

    DECA_ASSERT(a.cycles > b.cycles, "warmup longer than the full run");

    GemmResult r = a;
    r.cycles = a.cycles - b.cycles;
    r.tilesProcessed = a.tilesProcessed - b.tilesProcessed;
    const double seconds = static_cast<double>(r.cycles) / params.freqHz();
    r.tilesPerSecond = static_cast<double>(r.tilesProcessed) / seconds;
    r.tflops = kFmasPerTileOpPerBatchRow *
               static_cast<double>(workload.batchN) * r.tilesPerSecond /
               kTera;

    // Utilizations over the steady window: difference the accumulated
    // busy time (util * window) of the two runs.
    auto steady_util = [&](double ua, double ub) {
        const double busy = ua * static_cast<double>(a.cycles) -
                            ub * static_cast<double>(b.cycles);
        double u = busy / static_cast<double>(r.cycles);
        if (u < 0.0)
            u = 0.0;
        return u > 1.0 ? 1.0 : u;
    };
    r.utilMem = steady_util(a.utilMem, b.utilMem);
    r.utilTmul = steady_util(a.utilTmul, b.utilTmul);
    r.utilVec = steady_util(a.utilVec, b.utilVec);
    r.utilDeca = steady_util(a.utilDeca, b.utilDeca);
    return r;
}

} // namespace deca::kernels
