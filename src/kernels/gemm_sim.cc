#include "kernels/gemm_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/logging.h"
#include "core/host_core.h"
#include "kernels/sw_cost_model.h"
#include "sim/sampling.h"

namespace deca::kernels {

using sim::Delay;
using sim::FetchStream;
using sim::FetchStreamConfig;
using sim::PrefetchPolicy;
using sim::Semaphore;
using sim::Signal;
using sim::SimTask;

namespace {

/** Store-drain callback: the invocation store became visible. */
void
setSignalFn(void *s, u64)
{
    static_cast<Signal *>(s)->set();
}

} // namespace

/** Per-core simulation state: the host-core front end, resources,
 *  signals, work queues, and the fetch streams. */
struct GemmSimulation::Core
{
    Core(GemmSimulation &owner, sim::EventQueue &q, u32 core_id,
         u32 num_tiles, u32 num_loaders,
         const core::HostCoreConfig &hc)
        : sim(&owner), id(core_id),
          tmul(q, "tmul" + std::to_string(core_id)),
          avx(q, "avx" + std::to_string(core_id)),
          deca(q, "deca" + std::to_string(core_id)),
          host(q, hc, num_tiles), bufSlots(q, 2), readyTiles(q, 0),
          peJobSem(q, 0), xferJobSem(q, 0), ldTok(q, 0), vecTok(q, 0),
          tmulTok(q, 0)
    {
        invoked.reserve(num_tiles);
        dataReady.reserve(num_tiles);
        tileDone.reserve(num_tiles);
        tregReady.reserve(num_tiles);
        for (u32 t = 0; t < num_tiles; ++t) {
            invoked.push_back(std::make_unique<Signal>(q));
            dataReady.push_back(std::make_unique<Signal>(q));
            tileDone.push_back(std::make_unique<Signal>(q));
            tregReady.push_back(std::make_unique<Signal>(q));
        }
        seqTepl.assign(num_tiles, 0);
        seqLoad.assign(num_tiles, 0);
        seqVec.assign(num_tiles, 0);
        seqTmul.assign(num_tiles, 0);
        issueGen.assign(num_tiles, 0);
        arrivedGen.assign(num_tiles, 0);
        discarded.assign(num_tiles, 0);
        (void)num_loaders;
    }

    GemmSimulation *sim;
    u32 id;

    /** Software engines use one stream; the DECA engine has one stream
     *  per Loader (even/odd tiles) so the dual Loaders overlap their
     *  fetches exactly as the hardware double-buffering does. */
    std::unique_ptr<FetchStream> stream;
    std::unique_ptr<FetchStream> loaderStream[2];

    sim::BusyResource tmul;
    sim::BusyResource avx;
    sim::BusyResource deca;

    /** The OoO front end this core's instruction stream runs through. */
    core::HostCore host;

    /** Double software buffer (libxsmm) / tile-register slots. */
    Semaphore bufSlots;
    /** Decompressed tiles waiting for the AMX loop. */
    Semaphore readyTiles;

    /** DECA PE work queue: first-pass decompressions admitted in tile
     *  order, redo passes (squashed TEPL attempts) at the front. */
    struct PeJob
    {
        u32 tile;
        bool redo;
    };
    std::deque<PeJob> peJobs;
    Semaphore peJobSem;
    u32 fpPrefix = 0; ///< first-pass in-order admission cursor

    /** Accepted PE completions awaiting their TOut->treg transfer. */
    std::deque<u32> xferJobs;
    Semaphore xferJobSem;

    /** Dispatch tokens: the back end may execute an instruction only
     *  once the front end has dispatched it. Pre-released at cycle 0
     *  when the front end is unbounded. */
    Semaphore ldTok;
    Semaphore vecTok;
    Semaphore tmulTok;

    /** Poison flag: the stream is done, drain the queue consumers. */
    bool procsDone = false;

    /** Per-tile ROB sequence numbers (0 = not yet dispatched). */
    std::vector<u64> seqTepl;
    std::vector<u64> seqLoad;
    std::vector<u64> seqVec;
    std::vector<u64> seqTmul;
    /** TEPL attempt generations: bumped per issue; an arrival or a PE
     *  completion only counts for the attempt it belongs to. */
    std::vector<u32> issueGen;
    std::vector<u32> arrivedGen;
    /** A finished PE pass was thrown away (squashed attempt); the
     *  re-arrival queues the redo. */
    std::vector<u8> discarded;

    /** Per-tile lifecycle events of the DECA path. */
    std::vector<std::unique_ptr<Signal>> invoked;
    std::vector<std::unique_ptr<Signal>> dataReady;
    std::vector<std::unique_ptr<Signal>> tileDone;
    std::vector<std::unique_ptr<Signal>> tregReady;
};

GemmSimulation::GemmSimulation(const sim::SimParams &params,
                               const KernelConfig &config,
                               const GemmWorkload &workload,
                               const TilePool &pool)
    : params_(params), config_(config), workload_(workload), pool_(pool)
{
    DECA_ASSERT(pool.scheme().name == workload.scheme.name,
                "pool was built for a different scheme");

    mem_ = std::make_unique<sim::MemorySystem>(q_, params_.memConfig());

    if (config_.engine == Engine::Deca) {
        accel::DecaPipeline pipeline(config_.deca);
        pipeline.configure(workload_.scheme);
        deca_cycles_.reserve(pool_.size());
        for (u32 i = 0; i < pool_.size(); ++i)
            deca_cycles_.push_back(pipeline.tileCycles(pool_.tile(i)));
    } else if (config_.engine == Engine::Software) {
        sw_cycles_ = swDecompressCycles(workload_.scheme,
                                        config_.vectorScaling, params_);
    }
}

GemmSimulation::~GemmSimulation() = default;

u32
scheduledPoolIndex(u32 c, u32 t, u32 pool_size)
{
    // Offset each core into the pool so cores do not process identical
    // tile sequences in lockstep.
    return (c * 17 + t) % pool_size;
}

u64
scheduledTileBytes(const TilePool &pool, u32 c, u32 t)
{
    return pool.tileBytes(scheduledPoolIndex(c, t, pool.size()));
}

u32
GemmSimulation::poolIndex(u32 c, u32 t) const
{
    return scheduledPoolIndex(c, t, pool_.size());
}

u64
GemmSimulation::tileBytes(u32 c, u32 t) const
{
    return pool_.tileBytes(poolIndex(c, t));
}

Cycles
GemmSimulation::decaTileCycles(u32 c, u32 t) const
{
    return deca_cycles_[poolIndex(c, t)];
}

Cycles
GemmSimulation::outputReadLatency() const
{
    if (config_.integration.toutRegs)
        return params_.decaToCoreRead;
    // Without TOut registers the tile takes the longer path through the
    // L2: the core's tload hits the L2 where DECA deposited it.
    return params_.l2Latency + params_.tloadL1Cycles;
}

void
GemmSimulation::noteTileDone(Core &pc, u32 t)
{
    if (probe_ != nullptr)
        probe_->tileEnd[pc.id][t] = q_.now();
}

void
GemmSimulation::coreFinished()
{
    if (++cores_done_ == params_.cores)
        done_cycle_ = q_.now();
}

void
GemmSimulation::finishCore(u32 c)
{
    Core &pc = *cores_[c];
    pc.procsDone = true;
    // Poison tokens drain the PE and transfer queue consumers.
    pc.peJobSem.release();
    pc.xferJobSem.release();
    pc.host.stop();
    coreFinished();
}

// ---------------------------------------------------------------------
// Software / uncompressed kernels (Fig. 2 structure)
// ---------------------------------------------------------------------

SimTask
GemmSimulation::swDispatchProc(u32 c)
{
    // Program order per tile: load the compressed bytes, run the AVX
    // decompression sequence, TMUL. The old decompress/gemm overlap
    // needs only a handful of OoO window entries; robSize=1 serializes
    // the whole loop.
    Core &pc = *cores_[c];
    for (u32 t = 0; t < workload_.tilesPerCore; ++t) {
        core::Op ld;
        ld.cls = core::OpClass::Load;
        pc.seqLoad[t] = co_await pc.host.dispatch(ld);
        pc.ldTok.release();
        if (sw_cycles_ > 0) {
            core::Op vec;
            vec.cls = core::OpClass::Compute;
            pc.seqVec[t] = co_await pc.host.dispatch(vec);
            pc.vecTok.release();
        }
        core::Op mul;
        mul.cls = core::OpClass::Compute;
        pc.seqTmul[t] = co_await pc.host.dispatch(mul);
        pc.tmulTok.release();
    }
}

SimTask
GemmSimulation::swDecompressProc(u32 c)
{
    Core &pc = *cores_[c];
    for (u32 t = 0; t < workload_.tilesPerCore; ++t) {
        // Wait for a free half of the double software buffer.
        co_await pc.bufSlots.acquire();
        co_await pc.ldTok.acquire();
        // Compressed bytes must have arrived from memory.
        co_await pc.stream->fetch(tileBytes(c, t));
        pc.host.complete(pc.seqLoad[t]);
        // The AVX decompression sequence for this tile, plus the scalar
        // loop bookkeeping that is not hidden by the vector work.
        if (sw_cycles_ > 0) {
            co_await pc.vecTok.acquire();
            co_await pc.avx.busy(sw_cycles_);
            co_await Delay(q_, params_.swTileOverhead);
            pc.host.complete(pc.seqVec[t]);
        }
        pc.readyTiles.release();
    }
}

SimTask
GemmSimulation::swGemmProc(u32 c)
{
    Core &pc = *cores_[c];
    for (u32 t = 0; t < workload_.tilesPerCore; ++t) {
        co_await pc.readyTiles.acquire();
        co_await pc.tmulTok.acquire();
        // tload from the L1-resident buffer overlaps with the previous
        // TComp under out-of-order execution; the TMUL occupancy is the
        // serializing resource.
        co_await pc.tmul.busy(params_.tmulCycles);
        pc.host.complete(pc.seqTmul[t]);
        noteTileDone(pc, t);
        pc.bufSlots.release();
    }
    finishCore(c);
}

// ---------------------------------------------------------------------
// DECA kernels (Secs. 5.2-5.3)
// ---------------------------------------------------------------------

SimTask
GemmSimulation::decaFeedProc(u32 c, u32 loader)
{
    // Each Loader handles alternating tiles with its own LDQ/prefetch
    // stream, so the fetch of tile t+1 overlaps the fetch and
    // processing of tile t even without a prefetcher (hardware double
    // buffering, Fig. 8). A tile is fetched exactly once: a squashed
    // TEPL's lines stay in the L2 and the redo pass rereads them there.
    Core &pc = *cores_[c];
    const u32 stride = config_.integration.numLoaders;
    for (u32 t = loader; t < workload_.tilesPerCore; t += stride) {
        // A Loader starts fetching when its control register is written.
        co_await pc.invoked[t]->wait();
        co_await pc.loaderStream[loader]->fetch(tileBytes(c, t));
        pc.dataReady[t]->set();
        pumpFirstPass(pc);
    }
}

void
GemmSimulation::pumpFirstPass(Core &pc)
{
    // The PE consumes first-pass tiles in tile order even though the
    // two Loaders can finish their fetches out of order.
    while (pc.fpPrefix < workload_.tilesPerCore &&
           pc.dataReady[pc.fpPrefix]->isSet()) {
        pc.peJobs.push_back(Core::PeJob{pc.fpPrefix, false});
        pc.peJobSem.release();
        ++pc.fpPrefix;
    }
}

void
GemmSimulation::discardAttempt(Core &pc, u32 tile)
{
    // The work just finished belonged to a squashed/superseded TEPL
    // attempt. If the re-issued invocation already arrived, redo the
    // decompression now (at the queue front: it is the oldest work);
    // otherwise remember it for the re-arrival.
    if (pc.arrivedGen[tile] == pc.issueGen[tile] &&
        pc.host.teplIssued(pc.seqTepl[tile])) {
        pc.peJobs.push_front(Core::PeJob{tile, true});
        pc.peJobSem.release();
    } else {
        pc.discarded[tile] = 1;
    }
}

SimTask
GemmSimulation::decaPeProc(u32 c)
{
    Core &pc = *cores_[c];
    const bool via_l2 = !config_.integration.toutRegs;
    const bool tepl =
        config_.integration.invocation == Invocation::Tepl;
    while (true) {
        co_await pc.peJobSem.acquire();
        if (pc.procsDone)
            break;
        const Core::PeJob job = pc.peJobs.front();
        pc.peJobs.pop_front();
        Cycles cycles = decaTileCycles(c, job.tile);
        // Without TOut registers the PE must also push the 16 output
        // lines of the decompressed tile into the L2.
        if (via_l2)
            cycles += kTileRows;
        co_await pc.deca.busy(cycles);
        if (!job.redo)
            pc.tileDone[job.tile]->set();
        if (!tepl)
            continue; // store+fence: the core polls tileDone itself
        // The completion only counts for a live TEPL attempt whose
        // invocation store has arrived.
        if (pc.host.teplIssued(pc.seqTepl[job.tile]) &&
            pc.arrivedGen[job.tile] == pc.issueGen[job.tile]) {
            pc.xferJobs.push_back(job.tile);
            pc.xferJobSem.release();
        } else {
            discardAttempt(pc, job.tile);
        }
    }
}

SimTask
GemmSimulation::decaTransferProc(u32 c)
{
    // TOut -> tile-register transfer: the completion leg of a TEPL. It
    // proceeds independently of the AMX loop, so consecutive transfers
    // overlap with TComp execution (this is what hides the
    // communication latency, Sec. 5.3).
    Core &pc = *cores_[c];
    while (true) {
        co_await pc.xferJobSem.acquire();
        if (pc.procsDone)
            break;
        const u32 t = pc.xferJobs.front();
        pc.xferJobs.pop_front();
        const u32 gen = pc.issueGen[t];
        co_await Delay(q_, outputReadLatency());
        if (pc.host.teplIssued(pc.seqTepl[t]) &&
            pc.issueGen[t] == gen) {
            pc.tregReady[t]->set();
            // The tload-from-TOut instruction has its data.
            if (pc.seqLoad[t] != 0)
                pc.host.completeOnce(pc.seqLoad[t]);
            // Frees the Loader port and issues the next ready TEPL.
            pc.host.teplComplete(pc.seqTepl[t]);
        } else {
            discardAttempt(pc, t);
        }
    }
}

void
GemmSimulation::onTeplIssue(void *ctx, const accel::TeplEntry &e)
{
    // The TEPL queue issued an entry onto a Loader port: the control
    // register store travels to DECA. Re-issues (after a squash) take
    // a fresh generation so stale arrivals cannot complete them.
    Core &pc = *static_cast<Core *>(ctx);
    const u32 tile = static_cast<u32>(e.metadata);
    const u32 gen = ++pc.issueGen[tile];
    DECA_ASSERT(tile < 0x10000u && gen < 0x10000u,
                "tile/generation exceed the packed event payload");
    pc.sim->q_.schedule(pc.sim->params_.coreToDecaStore, &teplArrival,
                        &pc, tile | (gen << 16));
}

void
GemmSimulation::teplArrival(void *ctx, u64 arg)
{
    Core &pc = *static_cast<Core *>(ctx);
    const u32 tile = static_cast<u32>(arg) & 0xffffu;
    const u32 gen = static_cast<u32>(arg) >> 16;
    // Even a stale arrival (the store left before its TEPL was
    // squashed) starts the Loader fetch — the in-flight work drains,
    // its bytes are simply wasted.
    pc.invoked[tile]->set();
    if (gen != pc.issueGen[tile])
        return; // superseded by a newer issue of this tile
    if (!pc.host.teplIssued(pc.seqTepl[tile]))
        return; // squashed after this issue; the re-issue completes it
    pc.arrivedGen[tile] = gen;
    // The TeplIssue instruction itself is done once its store is out.
    pc.host.completeOnce(pc.seqTepl[tile]);
    if (pc.discarded[tile]) {
        pc.discarded[tile] = 0;
        pc.peJobs.push_front(Core::PeJob{tile, true});
        pc.peJobSem.release();
    }
}

SimTask
GemmSimulation::teplDispatchProc(u32 c)
{
    // Program order per tile: TEPL (invoke DECA), tload the TOut
    // register, TMUL. The TEPL enters the real TeplQueue at dispatch
    // and issues out of order onto a free Loader port; dispatch stalls
    // only on front-end structural limits.
    Core &pc = *cores_[c];
    for (u32 t = 0; t < workload_.tilesPerCore; ++t) {
        core::Op tepl;
        tepl.cls = core::OpClass::TeplIssue;
        tepl.teplMeta = t;
        tepl.teplDest = t % 8;
        pc.seqTepl[t] = co_await pc.host.dispatch(tepl);
        core::Op ld;
        ld.cls = core::OpClass::Load;
        pc.seqLoad[t] = co_await pc.host.dispatch(ld);
        // The transfer may already have landed the tile.
        if (pc.tregReady[t]->isSet())
            pc.host.completeOnce(pc.seqLoad[t]);
        core::Op mul;
        mul.cls = core::OpClass::Compute;
        pc.seqTmul[t] = co_await pc.host.dispatch(mul);
        pc.tmulTok.release();
    }
}

SimTask
GemmSimulation::teplGemmProc(u32 c)
{
    Core &pc = *cores_[c];
    for (u32 t = 0; t < workload_.tilesPerCore; ++t) {
        co_await pc.tmulTok.acquire();
        co_await pc.tregReady[t]->wait();
        co_await pc.tmul.busy(params_.tmulCycles);
        pc.host.complete(pc.seqTmul[t]);
        noteTileDone(pc, t);
    }
    finishCore(c);
}

SimTask
GemmSimulation::storeFenceDispatchProc(u32 c)
{
    // Figure 9: every iteration executes ST M(i+1); Fence; TLoad T(i);
    // TComp. The store drains only at the ROB head and the fence
    // blocks dispatch until it completes, so the stream serializes and
    // exposes the full core-DECA communication latency each iteration
    // — for ANY window size, which is exactly why the paper replaces
    // this invocation scheme with TEPL.
    Core &pc = *cores_[c];
    const u32 total = workload_.tilesPerCore;
    const u32 loaders = config_.integration.numLoaders;

    // Preamble: prime each Loader (ST M0; Fence; ST M1; Fence; ...).
    for (u32 k = 0; k < std::min<u32>(loaders, total); ++k) {
        core::Op st;
        st.cls = core::OpClass::Store;
        st.fn = &setSignalFn;
        st.ctx = pc.invoked[k].get();
        co_await pc.host.dispatch(st);
        core::Op f;
        f.cls = core::OpClass::Fence;
        co_await pc.host.dispatch(f);
    }

    for (u32 t = 0; t < total; ++t) {
        core::Op ld;
        ld.cls = core::OpClass::Load;
        pc.seqLoad[t] = co_await pc.host.dispatch(ld);
        pc.ldTok.release();
        core::Op mul;
        mul.cls = core::OpClass::Compute;
        pc.seqTmul[t] = co_await pc.host.dispatch(mul);
        pc.tmulTok.release();
        if (t + loaders < total) {
            core::Op st;
            st.cls = core::OpClass::Store;
            st.fn = &setSignalFn;
            st.ctx = pc.invoked[t + loaders].get();
            co_await pc.host.dispatch(st);
            core::Op f;
            f.cls = core::OpClass::Fence;
            co_await pc.host.dispatch(f);
        }
    }
}

SimTask
GemmSimulation::storeFenceExecProc(u32 c)
{
    Core &pc = *cores_[c];
    for (u32 t = 0; t < workload_.tilesPerCore; ++t) {
        co_await pc.ldTok.acquire();
        co_await pc.tileDone[t]->wait();
        // TLoad from TOut (or via the L2) executes at the ROB head.
        co_await Delay(q_, outputReadLatency());
        pc.host.complete(pc.seqLoad[t]);
        co_await pc.tmulTok.acquire();
        co_await pc.tmul.busy(params_.tmulCycles);
        pc.host.complete(pc.seqTmul[t]);
        noteTileDone(pc, t);
    }
    finishCore(c);
}

// ---------------------------------------------------------------------
// Run orchestration
// ---------------------------------------------------------------------

GemmResult
GemmSimulation::run()
{
    const u32 n_cores = params_.cores;
    const u32 tiles = workload_.tilesPerCore;

    core::HostCoreConfig hc;
    hc.robSize = params_.robSize;
    hc.issueWidth = params_.issueWidth;
    hc.lsqSize = params_.lsqSize;
    hc.teplQueueSize = params_.teplQueueSize;
    hc.teplPorts = config_.engine == Engine::Deca
                       ? config_.integration.numLoaders
                       : 2;
    hc.flushPeriod = params_.flushPeriodCycles;
    hc.flushPenalty = params_.flushPenaltyCycles;
    hc.storeLatency = params_.coreToDecaStore;
    hc.fenceLatency = params_.fenceCycles;

    // Per-core total stream length.
    cores_.clear();
    cores_.reserve(n_cores);
    for (u32 c = 0; c < n_cores; ++c) {
        const u32 loaders = config_.engine == Engine::Deca
                                ? config_.integration.numLoaders
                                : 2;
        auto core = std::make_unique<Core>(*this, q_, c, tiles, loaders,
                                           hc);
        if (config_.engine == Engine::Deca &&
            config_.integration.invocation == Invocation::Tepl)
            core->host.setTeplHandler(&GemmSimulation::onTeplIssue,
                                      core.get());

        FetchStreamConfig fc;
        fc.mshrs = params_.l2Mshrs;
        fc.prefetchLines = params_.l2PrefetchLines;
        fc.boundedAcceptance = params_.memAcceptDepth != 0;
        if (config_.engine == Engine::Deca) {
            const auto &integ = config_.integration;
            if (integ.decaPrefetcher) {
                fc.policy = PrefetchPolicy::DecaPf;
                fc.onChipLatency = params_.l2Latency + params_.llcLatency;
            } else if (integ.readsL2) {
                // The generic L2 stream prefetcher sees a Loader's
                // interleaved nonzero/bitmask/scale accesses as broken
                // streams, so its effective lookahead is weaker than on
                // a pure sequential stream — the reason DECA carries
                // its own prefetcher (Sec. 6.1).
                fc.policy = PrefetchPolicy::L2Stream;
                fc.prefetchLines = std::max<u32>(
                    1, params_.l2PrefetchLines / 2);
                fc.onChipLatency = params_.l2Latency + params_.llcLatency;
            } else {
                // Base: read straight from the LLC, no prefetcher.
                fc.policy = PrefetchPolicy::None;
                fc.onChipLatency = params_.llcLatency;
            }
        } else {
            // Cores always read through their L2 with the stream
            // prefetcher enabled; on long streams the prefetcher ramps
            // its degree with the demand footprint.
            fc.policy = PrefetchPolicy::L2Stream;
            fc.onChipLatency = params_.l2Latency + params_.llcLatency;
            const double mean_lines = pool_.meanTileBytes() /
                                      kCacheLineBytes;
            fc.prefetchLines = std::max<u32>(
                params_.l2PrefetchLines,
                static_cast<u32>(2.0 * mean_lines));
        }

        if (config_.engine == Engine::Deca) {
            // One stream per Loader over its (even or odd) tile
            // subsequence; the Loaders split the L2 MSHR budget.
            fc.mshrs = std::max<u32>(1, fc.mshrs / loaders);
            for (u32 lid = 0; lid < loaders; ++lid) {
                u64 bytes = 0;
                for (u32 t = lid; t < tiles; t += loaders)
                    bytes += tileBytes(c, t);
                core->loaderStream[lid] =
                    std::make_unique<FetchStream>(q_, *mem_, fc, bytes);
            }
        } else {
            u64 total_bytes = 0;
            for (u32 t = 0; t < tiles; ++t)
                total_bytes += tileBytes(c, t);
            core->stream = std::make_unique<FetchStream>(q_, *mem_, fc,
                                                         total_bytes);
        }
        cores_.push_back(std::move(core));
    }

    cores_done_ = 0;
    done_cycle_ = 0;
    for (u32 c = 0; c < n_cores; ++c) {
        switch (config_.engine) {
          case Engine::None:
          case Engine::Software:
            swDispatchProc(c);
            swDecompressProc(c);
            swGemmProc(c);
            break;
          case Engine::Deca:
            for (u32 lid = 0; lid < config_.integration.numLoaders; ++lid)
                decaFeedProc(c, lid);
            decaPeProc(c);
            if (config_.integration.invocation == Invocation::Tepl) {
                decaTransferProc(c);
                teplDispatchProc(c);
                teplGemmProc(c);
            } else {
                storeFenceDispatchProc(c);
                storeFenceExecProc(c);
            }
            break;
        }
    }

    const Cycles drained = q_.run();
    DECA_ASSERT(cores_done_ == n_cores, "a core did not finish its work");

    // With periodic flushes each core's flush process outlives the
    // kernel by up to one period, so the run is measured to the last
    // core completion instead of event-queue drain (identical without
    // flushes, where the kernel's events are the last to fire).
    const Cycles end =
        params_.flushPeriodCycles > 0 ? done_cycle_ : drained;

    GemmResult r;
    r.kernel = config_.describe();
    r.schemeName = workload_.scheme.name;
    r.batchN = workload_.batchN;
    r.cycles = end;
    r.tilesProcessed = u64{n_cores} * tiles;

    const double seconds = static_cast<double>(end) / params_.freqHz();
    r.tilesPerSecond = static_cast<double>(r.tilesProcessed) / seconds;
    r.tflops = kFmasPerTileOpPerBatchRow *
               static_cast<double>(workload_.batchN) * r.tilesPerSecond /
               kTera;

    // Component utilizations over the whole run (busy snapshot at the
    // window start is zero since the run starts at cycle 0).
    r.utilMem = mem_->utilization(0.0, end);
    u64 tmul_busy = 0;
    u64 avx_busy = 0;
    u64 deca_busy = 0;
    for (const auto &core : cores_) {
        tmul_busy += core->tmul.busyCycles();
        avx_busy += core->avx.busyCycles();
        deca_busy += core->deca.busyCycles();
        r.hostFlushes += core->host.statFlushes();
        r.teplSquashed += core->host.teplQueue().statSquashed();
        r.teplReissued += core->host.statReissued();
    }
    const double core_cycles = static_cast<double>(end) * n_cores;
    r.utilTmul = static_cast<double>(tmul_busy) / core_cycles;
    // Each AVX "busy cycle" occupies the core's SIMD issue, normalized
    // to the full vector engine (all units).
    r.utilVec = static_cast<double>(avx_busy) / core_cycles;
    r.utilDeca = static_cast<double>(deca_busy) / core_cycles;

    // Sampled tier: hand the busy totals to the driver, which scales
    // them by the target window's schedule (see SampleProbe).
    if (probe_ != nullptr) {
        probe_->memBusy = mem_->busySnapshot();
        probe_->memBytes = mem_->bytesServed();
        probe_->tmulBusy = tmul_busy;
        probe_->avxBusy = avx_busy;
        probe_->decaBusy = deca_busy;
        probe_->decaPoolCycles = deca_cycles_;
    }
    return r;
}

// ---------------------------------------------------------------------
// Sampled tier (sim/sampling.h): two truncated runs replace the full
// tile stream, and the full run's completion time is extrapolated
// from the difference of their endings. Differencing two run *ends*
// is the load-bearing choice: cores sharing DRAM drift apart
// linearly (a core slightly ahead stays ahead), and the slowest core
// speeds up near the end of a run as faster cores finish and stop
// contending — a relief credit proportional to the accumulated
// spread, i.e. linear in the run length. Both effects bias every
// interior-window rate, but cancel exactly in (T(n2) - T(n1)) /
// (n2 - n1) because a shorter run is a cycle-exact prefix of a
// longer one until its own end-game. The two lengths are a whole
// number of pool periods apart so both ends see the same schedule
// phase. Convergence is judged on the reported quantity: the
// aggregate and the per-core extrapolations of the full-run end must
// agree (rank churn or a still-ramping window makes them diverge).
// A failed check grows the second run by pool periods — while that
// still undercuts the full path, and up to maxErrorCheckTiles —
// before the driver falls back to the full simulation.
// ---------------------------------------------------------------------

namespace {

/** Everything one truncated, instrumented run yields. */
struct TruncatedRun
{
    u32 tiles = 0;     ///< tiles per core this run executed
    GemmResult raw;    ///< measurements of the truncated run itself
    SampleProbe probe; ///< completion timestamps + busy totals
    sim::RunEndPoint end; ///< per-core completion times
};

/** Sampling knobs from SimParams, floored so the window always has
 *  enough tiles to difference and to split into halves. */
sim::SamplingConfig
samplingConfigOf(const sim::SimParams &params)
{
    sim::SamplingConfig sc;
    sc.warmupTiles = std::max<u32>(2, params.warmupTiles);
    sc.measureTiles = std::max<u32>(8, params.measureTiles);
    sc.maxErrorCheckTiles =
        std::max(sc.measureTiles, params.maxErrorCheckTiles);
    return sc;
}

/** Run one truncated instrumented simulation of `tiles` per core. */
void
runTruncated(const sim::SimParams &params, const KernelConfig &config,
             const GemmWorkload &workload, const TilePool &pool,
             u32 tiles, TruncatedRun &out)
{
    GemmWorkload wk = workload;
    wk.tilesPerCore = tiles;
    GemmSimulation sim(params, config, wk, pool);
    out.probe.tileEnd.assign(params.cores,
                             std::vector<Cycles>(tiles, 0));
    sim.attachProbe(&out.probe);
    out.raw = sim.run();
    out.tiles = tiles;
    out.end.tiles = tiles;
    out.end.coreEnd.resize(params.cores);
    for (u32 c = 0; c < params.cores; ++c)
        out.end.coreEnd[c] =
            static_cast<double>(out.probe.tileEnd[c][tiles - 1]);
}

// ---------------------------------------------------------------------
// Warm-up baseline cache: sweeps (and the campaign's top-K
// validation) call the sampled tier many times with identical
// (machine, kernel, workload) cells differing only in the swept knob
// — usually the stream length — so the n1-tile baseline run is
// re-simulated unchanged per cell. Simulation is deterministic and
// cached runs are immutable, so sharing one TruncatedRun cannot
// change any byte of any result; the cost accounting in the sampled
// drivers still charges the baseline as if it ran, so cache-on and
// cache-off take identical decisions and produce identical results —
// the cache only removes wall-clock.
// ---------------------------------------------------------------------

struct BaselineCache
{
    std::mutex mu;
    std::map<std::string, std::unique_ptr<TruncatedRun>> runs;
    u64 hits = 0;
    u64 misses = 0;
};

BaselineCache &
baselineCache()
{
    static BaselineCache c;
    return c;
}

/** Cache key: every field that shapes a truncated run's dynamics.
 *  Deliberately absent: workload.tilesPerCore (the baseline replaces
 *  it with `tiles`) and the sampling knobs (sampleMode, warmupTiles,
 *  measureTiles, maxErrorCheckTiles, sampleBaselineCache), which pick
 *  run lengths but never change a fixed-length run. */
std::string
baselineKey(const sim::SimParams &p, const KernelConfig &c,
            const GemmWorkload &w, u32 tiles)
{
    std::string k = p.name;
    k.reserve(512);
    const auto u = [&k](u64 v) {
        k += '|';
        k += std::to_string(v);
    };
    const auto d = [&k](double v) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "|%.17g", v);
        k += buf;
    };
    // Machine.
    d(p.freqGhz);
    u(p.cores);
    u(static_cast<u64>(p.memKind));
    d(p.memBwGBs);
    u(p.memLatency);
    u(p.memChannels);
    u(p.memQueueDepth);
    u(p.memAcceptDepth);
    u(p.memChannelHash ? 1 : 0);
    u(static_cast<u64>(p.memModel));
    const DramTiming &t = p.memTiming;
    u(t.banksPerChannel);
    u(t.rowBytes);
    d(t.tRowHitCycles);
    d(t.tRowMissCycles);
    d(t.tRowSwitchBusCycles);
    u(t.channelBlockLines);
    u(t.schedWindow);
    u(t.maxHitStreak);
    d(p.memContentionKnee);
    d(p.memContentionSlope);
    d(p.memContentionFloor);
    u(p.llcLatency);
    u(p.l2Latency);
    u(p.l2Mshrs);
    u(p.avxUnitsPerCore);
    u(p.maxVectorIssuePerCycle);
    u(p.tmulCycles);
    u(p.tloadL1Cycles);
    u(p.coreToDecaStore);
    u(p.decaToCoreRead);
    u(p.fenceCycles);
    u(p.l2PrefetchLines);
    u(p.swTileOverhead);
    u(p.robSize);
    u(p.issueWidth);
    u(p.lsqSize);
    u(p.teplQueueSize);
    u(p.flushPeriodCycles);
    u(p.flushPenaltyCycles);
    // Kernel.
    u(static_cast<u64>(c.engine));
    u(static_cast<u64>(c.vectorScaling));
    u(c.deca.w);
    u(c.deca.l);
    u(c.deca.pipelineDepth);
    u(c.integration.readsL2 ? 1 : 0);
    u(c.integration.decaPrefetcher ? 1 : 0);
    u(c.integration.toutRegs ? 1 : 0);
    u(static_cast<u64>(c.integration.invocation));
    u(c.integration.numLoaders);
    // Workload (tilesPerCore replaced by the baseline length).
    k += '|';
    k += w.scheme.name;
    u(static_cast<u64>(w.scheme.format));
    d(w.scheme.density);
    u(w.scheme.groupQuant ? 1 : 0);
    u(w.scheme.groupSize);
    u(w.batchN);
    u(w.poolTiles);
    u(w.seed);
    u(tiles);
    return k;
}

/** runTruncated through the process-wide baseline cache. The run is
 *  simulated outside the lock (determinism makes a racing duplicate
 *  byte-identical, so the loser is simply dropped); `local` backs the
 *  cache-off path. */
const TruncatedRun &
cachedBaseline(const sim::SimParams &params, const KernelConfig &config,
               const GemmWorkload &workload, const TilePool &pool,
               u32 tiles, TruncatedRun &local)
{
    if (!params.sampleBaselineCache) {
        runTruncated(params, config, workload, pool, tiles, local);
        return local;
    }
    BaselineCache &cache = baselineCache();
    const std::string key = baselineKey(params, config, workload, tiles);
    {
        std::lock_guard<std::mutex> lock(cache.mu);
        auto it = cache.runs.find(key);
        if (it != cache.runs.end()) {
            ++cache.hits;
            return *it->second;
        }
    }
    auto run = std::make_unique<TruncatedRun>();
    runTruncated(params, config, workload, pool, tiles, *run);
    std::lock_guard<std::mutex> lock(cache.mu);
    auto &slot = cache.runs[key];
    if (!slot) {
        ++cache.misses;
        slot = std::move(run);
    } else {
        ++cache.hits; // another worker raced us to an identical run
    }
    return *slot;
}

/**
 * Judge one extrapolation on the reported quantity: the aggregate
 * and per-core full-run estimates must agree within the tolerance
 * (per-tile, or per-byte of the target window's schedule).
 */
bool
estimateConverged(const sim::RunEndEstimate &est, const TilePool &pool,
                  u32 target_first, u32 target_last, double tol)
{
    if (!est.valid)
        return false;
    double bytes_t = 0.0;
    for (u32 t = target_first; t < target_last; ++t)
        bytes_t += static_cast<double>(scheduledTileBytes(pool, 0, t));
    const u32 target_tiles = target_last - target_first;
    sim::SteadyStateDetector det(tol);
    det.addWindow({est.perCore, bytes_t, target_tiles});
    det.addWindow({est.aggregate, bytes_t, target_tiles});
    return det.converged();
}

/** Round `v` up to a whole multiple of `m`. */
u32
ceilToMultiple(u32 v, u32 m)
{
    return (v + m - 1) / m * m;
}

/** Clamp a utilization estimate into [0, 1]. */
double
clampUtil(double u)
{
    if (u < 0.0)
        return 0.0;
    return u > 1.0 ? 1.0 : u;
}

/**
 * Assemble the extrapolated GemmResult: `cycles_est` for the target
 * window of tiles [util_first, util_last) per core, utilizations
 * scaled from the truncated run's busy totals by the target window's
 * schedule (busy time per byte / tile op / PE pass is stationary even
 * when a short run's wall-clock windows are not), and host-core
 * statistics scaled from the truncated run to the equivalent full
 * run's estimated length (flushes are periodic in time, so counts
 * scale with cycles).
 */
GemmResult
assembleEstimate(const sim::SimParams &params,
                 const GemmWorkload &workload, const TilePool &pool,
                 const TruncatedRun &run, double cycles_est,
                 double run_end_est, u32 util_first, u32 util_last,
                 u32 total_simulated)
{
    const u32 n_cores = params.cores;
    const u32 tiles = util_last - util_first;

    GemmResult r = run.raw;
    r.sampled = true;
    r.sampledTilesPerCore = total_simulated;
    r.cycles = static_cast<Cycles>(
        std::max<long long>(1, std::llround(cycles_est)));
    r.tilesProcessed = u64{n_cores} * tiles;
    const double seconds =
        static_cast<double>(r.cycles) / params.freqHz();
    r.tilesPerSecond = static_cast<double>(r.tilesProcessed) / seconds;
    r.tflops = kFmasPerTileOpPerBatchRow *
               static_cast<double>(workload.batchN) * r.tilesPerSecond /
               kTera;

    // Schedule weights of the truncated run vs the target window.
    double budget_bytes = 0.0;
    double target_bytes = 0.0;
    double budget_deca = 0.0;
    double target_deca = 0.0;
    const auto &deca_pool = run.probe.decaPoolCycles;
    const u32 pool_size = pool.size();
    for (u32 c = 0; c < n_cores; ++c) {
        for (u32 t = 0; t < run.tiles; ++t) {
            budget_bytes += static_cast<double>(
                scheduledTileBytes(pool, c, t));
            if (!deca_pool.empty())
                budget_deca += static_cast<double>(
                    deca_pool[scheduledPoolIndex(c, t, pool_size)]);
        }
        for (u32 t = util_first; t < util_last; ++t) {
            target_bytes += static_cast<double>(
                scheduledTileBytes(pool, c, t));
            if (!deca_pool.empty())
                target_deca += static_cast<double>(
                    deca_pool[scheduledPoolIndex(c, t, pool_size)]);
        }
    }
    const double tile_ratio =
        static_cast<double>(tiles) / static_cast<double>(run.tiles);
    const double byte_ratio =
        budget_bytes > 0.0 ? target_bytes / budget_bytes : 0.0;
    const double deca_ratio =
        budget_deca > 0.0 ? target_deca / budget_deca : 0.0;
    const double channels =
        static_cast<double>(params.memConfig().channels);
    const double core_cycles = cycles_est * n_cores;
    r.utilMem = clampUtil(run.probe.memBusy * byte_ratio /
                          (cycles_est * channels));
    r.utilTmul = clampUtil(
        static_cast<double>(run.probe.tmulBusy) * tile_ratio /
        core_cycles);
    r.utilVec = clampUtil(
        static_cast<double>(run.probe.avxBusy) * tile_ratio /
        core_cycles);
    r.utilDeca = clampUtil(
        static_cast<double>(run.probe.decaBusy) * deca_ratio /
        core_cycles);

    const double factor =
        run_end_est / static_cast<double>(run.raw.cycles);
    auto scale = [&](u64 count) {
        return static_cast<u64>(std::llround(
            static_cast<double>(count) * std::max(1.0, factor)));
    };
    r.hostFlushes = scale(run.raw.hostFlushes);
    r.teplSquashed = scale(run.raw.teplSquashed);
    r.teplReissued = scale(run.raw.teplReissued);
    return r;
}

/**
 * First measurement distance between the two run ends: the requested
 * tiles rounded up to whole pool periods, at least two so pool-phase
 * wobble (the schedule's 2-period beat) averages out of the rate.
 */
u32
initialDelta(u32 measure, u32 pool_tiles)
{
    return ceilToMultiple(std::max(measure, 2 * pool_tiles),
                          pool_tiles);
}

/**
 * Sampled replacement for the two-run steady-state measurement: the
 * warm-up baseline run T(n1) is simulated exactly (it is the first
 * rate point *and* the quantity the full path subtracts), a second
 * truncated run T(n2) fixes the end-to-end rate, and the steady
 * window is est_T(full) - T(n1). Returns false (caller runs the full
 * path) when the runs would not undercut the full stream or steady
 * state is never detected.
 */
bool
sampledSteady(const sim::SimParams &params, const KernelConfig &config,
              const GemmWorkload &workload, const TilePool &pool,
              u32 steady_warmup, GemmResult &out)
{
    const sim::SamplingConfig sc = samplingConfigOf(params);
    const u32 period = pool.size();
    const u32 full_tiles = workload.tilesPerCore + steady_warmup;
    const u32 n1 = steady_warmup;
    if (n1 == 0)
        return false;
    // The full path simulates full_tiles plus the warm-up baseline.
    const u32 full_cost = full_tiles + n1;

    TruncatedRun base_local;
    const TruncatedRun *base = nullptr;
    u32 spent = 0;
    for (u32 delta = initialDelta(sc.measureTiles, period);
         delta <= sc.maxErrorCheckTiles; delta += 2 * period) {
        const u32 n2 = n1 + delta;
        const u32 next = spent + n2 + (base ? 0 : n1);
        // Sampling must undercut the full path by a real margin (two
        // pool periods): near break-even the extrapolated remainder
        // is short, so the relative error of the steady *difference*
        // is amplified while the saving is nil — run exactly instead.
        if (n2 >= full_tiles || next + 2 * period >= full_cost)
            break;
        if (!base) {
            // A cache hit skips the simulation but is still charged
            // as `n1` spent tiles, so every downstream decision (and
            // byte of the result) matches the cache-off path.
            base = &cachedBaseline(params, config, workload, pool, n1,
                                   base_local);
            spent += n1;
        }
        TruncatedRun r2;
        runTruncated(params, config, workload, pool, n2, r2);
        spent += n2;
        const sim::RunEndEstimate est =
            sim::extrapolateRunEnd(base->end, r2.end, full_tiles);
        // Agreement within d only bounds either estimate's error from
        // the truth by about d, so demand half the user tolerance.
        if (!estimateConverged(est, pool, steady_warmup, full_tiles,
                               0.5 * sc.tolerance))
            continue;
        const double steady =
            est.aggregate - static_cast<double>(base->raw.cycles);
        out = assembleEstimate(params, workload, pool, r2, steady,
                               est.aggregate, steady_warmup,
                               full_tiles, spent);
        return true;
    }
    return false;
}

/** Sampled replacement for one full run (runGemm semantics): two
 *  truncated runs fix the end-to-end rate, and the full run's
 *  completion extrapolates from the second run's ending. */
bool
sampledFull(const sim::SimParams &params, const KernelConfig &config,
            const GemmWorkload &workload, const TilePool &pool,
            GemmResult &out)
{
    const sim::SamplingConfig sc = samplingConfigOf(params);
    const u32 period = pool.size();
    const u32 full_tiles = workload.tilesPerCore;
    // First rate point: whole pool periods clear of the cold-start
    // ramp (one period past the configured warm-up).
    const u32 n1 = ceilToMultiple(
        std::max(sc.warmupTiles, period) + period, period);

    TruncatedRun base_local;
    const TruncatedRun *base = nullptr;
    u32 spent = 0;
    for (u32 delta = initialDelta(sc.measureTiles, period);
         delta <= sc.maxErrorCheckTiles; delta += 2 * period) {
        const u32 n2 = n1 + delta;
        const u32 next = spent + n2 + (base ? 0 : n1);
        // Same real-margin rule as the steady driver: stop once the
        // remaining saving is within two pool periods of break-even.
        if (n2 >= full_tiles || next + 2 * period >= full_tiles)
            break;
        if (!base) {
            base = &cachedBaseline(params, config, workload, pool, n1,
                                   base_local);
            spent += n1;
        }
        TruncatedRun r2;
        runTruncated(params, config, workload, pool, n2, r2);
        spent += n2;
        const sim::RunEndEstimate est =
            sim::extrapolateRunEnd(base->end, r2.end, full_tiles);
        if (!estimateConverged(est, pool, 0, full_tiles,
                               0.5 * sc.tolerance))
            continue;
        out = assembleEstimate(params, workload, pool, r2,
                               est.aggregate, est.aggregate, 0,
                               full_tiles, spent);
        return true;
    }
    return false;
}

/**
 * Process-wide pool cache: sweeps re-request the same (scheme, size,
 * seed) pool for every machine/core-count/kernel cell, and the
 * construction (compress a synthetic matrix tile by tile) costs more
 * than a short sampled run. Construction is deterministic and pools
 * are immutable, so sharing cannot change any result.
 */
const TilePool &
cachedPool(const compress::CompressionScheme &scheme, u32 num_tiles,
           u64 seed)
{
    static std::mutex mu;
    static std::map<std::string, std::unique_ptr<TilePool>> pools;
    char num[64];
    std::snprintf(num, sizeof num, "|%d|%.17g|%d|%u|%u|%llu",
                  static_cast<int>(scheme.format), scheme.density,
                  scheme.groupQuant ? 1 : 0, scheme.groupSize,
                  num_tiles,
                  static_cast<unsigned long long>(seed));
    const std::string key = scheme.name + num;
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = pools[key];
    if (!slot)
        slot = std::make_unique<TilePool>(scheme, num_tiles, seed);
    return *slot;
}

} // namespace

BaselineCacheStats
sampleBaselineCacheStats()
{
    BaselineCache &c = baselineCache();
    std::lock_guard<std::mutex> lock(c.mu);
    return {c.hits, c.misses};
}

GemmResult
runGemm(const sim::SimParams &params, const KernelConfig &config,
        const GemmWorkload &workload)
{
    const TilePool &pool =
        cachedPool(workload.scheme, workload.poolTiles, workload.seed);
    if (params.sampleMode) {
        GemmResult sampled;
        if (sampledFull(params, config, workload, pool, sampled))
            return sampled;
    }
    GemmSimulation sim(params, config, workload, pool);
    return sim.run();
}

GemmResult
runGemmSteady(const sim::SimParams &params, const KernelConfig &config,
              const GemmWorkload &workload, u32 warmup_tiles)
{
    const TilePool &pool =
        cachedPool(workload.scheme, workload.poolTiles, workload.seed);
    if (params.sampleMode) {
        GemmResult sampled;
        if (sampledSteady(params, config, workload, pool, warmup_tiles,
                          sampled))
            return sampled;
    }

    GemmWorkload full = workload;
    full.tilesPerCore = workload.tilesPerCore + warmup_tiles;
    GemmWorkload warm = workload;
    warm.tilesPerCore = warmup_tiles;

    GemmSimulation sim_full(params, config, full, pool);
    GemmResult a = sim_full.run();
    GemmSimulation sim_warm(params, config, warm, pool);
    GemmResult b = sim_warm.run();

    DECA_ASSERT(a.cycles > b.cycles, "warmup longer than the full run");

    GemmResult r = a;
    r.cycles = a.cycles - b.cycles;
    r.tilesProcessed = a.tilesProcessed - b.tilesProcessed;
    const double seconds = static_cast<double>(r.cycles) / params.freqHz();
    r.tilesPerSecond = static_cast<double>(r.tilesProcessed) / seconds;
    r.tflops = kFmasPerTileOpPerBatchRow *
               static_cast<double>(workload.batchN) * r.tilesPerSecond /
               kTera;

    // Utilizations over the steady window: difference the accumulated
    // busy time (util * window) of the two runs.
    auto steady_util = [&](double ua, double ub) {
        const double busy = ua * static_cast<double>(a.cycles) -
                            ub * static_cast<double>(b.cycles);
        double u = busy / static_cast<double>(r.cycles);
        if (u < 0.0)
            u = 0.0;
        return u > 1.0 ? 1.0 : u;
    };
    r.utilMem = steady_util(a.utilMem, b.utilMem);
    r.utilTmul = steady_util(a.utilTmul, b.utilTmul);
    r.utilVec = steady_util(a.utilVec, b.utilVec);
    r.utilDeca = steady_util(a.utilDeca, b.utilDeca);
    return r;
}

} // namespace deca::kernels
