/**
 * @file
 * Functional model of the libxsmm-style AVX software decompression
 * sequence (Section 2.4).
 *
 * The kernel processes one tile row (32 BF16 outputs = one 512-bit
 * register = one cache line) per loop iteration, exactly like the JIT'ed
 * AVX code: load the next compressed chunk, expand it against the
 * bitmask with a masked vpexpand, widen/dequantize, apply MX scales,
 * and store to the L1 software buffer. Every emulated vector operation
 * is counted by category, so the per-row operation counts that the
 * Roof-Surface signature model and the cycle-level cost model use are
 * *derived* from this implementation rather than asserted — a test
 * checks all three agree.
 */

#ifndef DECA_KERNELS_SW_DECOMPRESS_H
#define DECA_KERNELS_SW_DECOMPRESS_H

#include "compress/compressed_tile.h"
#include "compress/tile.h"

namespace deca::kernels {

/** Vector-operation counts by category for one decompression run. */
struct AvxOpCounts
{
    u32 loads = 0;    ///< cache-line loads of compressed data/scales
    u32 stores = 0;   ///< stores to the L1 software buffer
    u32 masks = 0;    ///< kmov/mask-register manipulation
    u32 expands = 0;  ///< vpexpandb/w (masked de-sparsification)
    u32 converts = 0; ///< format widening (BF8->BF16 etc.)
    u32 permutes = 0; ///< vpermb LUT-style lookups (4/6-bit formats)
    u32 arith = 0;    ///< shifts, merges, multiplies, popcnt/pointer,
                      ///< loop overhead

    u32
    total() const
    {
        return loads + stores + masks + expands + converts + permutes +
               arith;
    }

    /** Cache-line-sized memory operations (the AVX2048 non-shrinkable
     *  part, Sec. 7). */
    u32 memOps() const { return loads + stores; }
    u32 computeOps() const { return total() - memOps(); }
};

/**
 * Decompress one tile with the emulated AVX sequence.
 *
 * @param ct The compressed tile.
 * @param counts Optional: accumulates the emulated vector-op counts.
 * @return The dense BF16 tile (bit-exact vs the golden decompressor).
 */
compress::DenseTile swDecompressTile(const compress::CompressedTile &ct,
                                     AvxOpCounts *counts = nullptr);

/** Emulated op counts for one tile row of a scheme (derivation hook). */
AvxOpCounts swOpCountsPerRow(const compress::CompressionScheme &scheme);

} // namespace deca::kernels

#endif // DECA_KERNELS_SW_DECOMPRESS_H
