/**
 * @file
 * Cycle-level multicore simulation of one compressed GeMM run.
 *
 * Every core runs the selected kernel variant against its own stream of
 * compressed tiles while all cores share the memory channel:
 *
 *  - Engine::None       : tload tiles straight from memory (BF16 base).
 *  - Engine::Software   : AVX decompression double-buffered with AMX
 *                         (libxsmm structure, Fig. 2), with optional
 *                         vector-scaling what-ifs (Fig. 15).
 *  - Engine::Deca       : per-core DECA PE with dual loaders, invoked
 *                         either with store+fence (Fig. 9) or TEPL
 *                         (Fig. 10), with the integration ablation axes
 *                         of Fig. 17.
 *
 * The simulation reports steady-state tiles/s, TFLOPS, and component
 * utilizations (memory channel, TMUL, AVX or DECA) for Table 3.
 */

#ifndef DECA_KERNELS_GEMM_SIM_H
#define DECA_KERNELS_GEMM_SIM_H

#include <memory>
#include <string>
#include <vector>

#include "deca/pipeline.h"
#include "deca/tepl_queue.h"
#include "kernels/kernel_config.h"
#include "kernels/workload.h"
#include "sim/coro.h"
#include "sim/fetch_stream.h"
#include "sim/memory_system.h"
#include "sim/params.h"
#include "sim/resource.h"

namespace deca::kernels {

/** Measured outcome of one GeMM simulation. */
struct GemmResult
{
    std::string kernel;
    std::string schemeName;
    u32 batchN = 1;
    Cycles cycles = 0;
    u64 tilesProcessed = 0;

    double tilesPerSecond = 0.0;
    double tflops = 0.0;

    double utilMem = 0.0;
    double utilTmul = 0.0;
    double utilVec = 0.0;  ///< AVX utilization (software engines)
    double utilDeca = 0.0; ///< DECA PE utilization (DECA engines)

    // Host-core front-end statistics (all zero with the default
    // unbounded/no-flush configuration).
    u64 hostFlushes = 0;  ///< pipeline flushes across all cores
    u64 teplSquashed = 0; ///< TEPL queue entries squashed by flushes
    u64 teplReissued = 0; ///< squashed TEPLs re-allocated after redirect

    /** Speedup of this result over a baseline result. */
    double
    speedupOver(const GemmResult &base) const
    {
        return tflops / base.tflops;
    }
};

/** One compressed-GeMM run on the simulated multicore. */
class GemmSimulation
{
  public:
    GemmSimulation(const sim::SimParams &params, const KernelConfig &config,
                   const GemmWorkload &workload, const TilePool &pool);
    ~GemmSimulation();

    GemmSimulation(const GemmSimulation &) = delete;
    GemmSimulation &operator=(const GemmSimulation &) = delete;

    /** Execute the run and return the measurements. */
    GemmResult run();

  private:
    struct Core;

    /** Pool tile index that core `c` processes as its t-th tile. */
    u32 poolIndex(u32 c, u32 t) const;
    u64 tileBytes(u32 c, u32 t) const;
    Cycles decaTileCycles(u32 c, u32 t) const;

    /** Latency of the core's read of a finished output tile. */
    Cycles outputReadLatency() const;

    // Simulation processes (one per core each). Every kernel's
    // instruction stream walks through the core's HostCore front end
    // via a dispatcher coroutine; the remaining processes are the
    // execution back end that completes instructions out of band.
    sim::SimTask swDispatchProc(u32 c);
    sim::SimTask swDecompressProc(u32 c);
    sim::SimTask swGemmProc(u32 c);
    sim::SimTask decaFeedProc(u32 c, u32 loader);
    sim::SimTask decaPeProc(u32 c);
    sim::SimTask decaTransferProc(u32 c);
    sim::SimTask teplDispatchProc(u32 c);
    sim::SimTask teplGemmProc(u32 c);
    sim::SimTask storeFenceDispatchProc(u32 c);
    sim::SimTask storeFenceExecProc(u32 c);

    /** TEPL queue issue callback + invocation-store arrival. */
    static void onTeplIssue(void *ctx, const accel::TeplEntry &e);
    static void teplArrival(void *ctx, u64 arg);

    /** Admit fetched tiles to the PE in program order. */
    void pumpFirstPass(Core &pc);
    /** A PE pass or transfer finished for a squashed/superseded TEPL
     *  attempt: queue the redo now or flag it for the re-arrival. */
    void discardAttempt(Core &pc, u32 tile);
    void finishCore(u32 c);
    void coreFinished();

    sim::SimParams params_;
    KernelConfig config_;
    GemmWorkload workload_;
    const TilePool &pool_;

    sim::EventQueue q_;
    std::unique_ptr<sim::MemorySystem> mem_;
    std::vector<std::unique_ptr<Core>> cores_;

    /** Per-pool-tile DECA pipeline cycles (precomputed). */
    std::vector<Cycles> deca_cycles_;
    /** Software decompression cycles per tile (scheme-constant). */
    Cycles sw_cycles_ = 0;

    u32 cores_done_ = 0;
    /** Cycle at which the last core finished its stream. With
     *  periodic flushes the per-core flush processes outlive the
     *  kernel by up to one period, so the run is measured to this
     *  point rather than to event-queue drain. */
    Cycles done_cycle_ = 0;
};

/** Convenience driver: build the pool and run one simulation. */
GemmResult runGemm(const sim::SimParams &params, const KernelConfig &config,
                   const GemmWorkload &workload);

/**
 * Steady-state measurement: runs the workload twice — once with only
 * `warmup_tiles` per core and once with warmup plus the workload's
 * tilesPerCore — and reports the difference, removing cold-start ramp
 * (empty prefetch windows, initial channel burst) from rates and
 * utilizations. This mirrors measuring the paper's ~250M-parameter FC
 * cascades in their bandwidth-steady regime.
 */
GemmResult runGemmSteady(const sim::SimParams &params,
                         const KernelConfig &config,
                         const GemmWorkload &workload,
                         u32 warmup_tiles = 48);

} // namespace deca::kernels

#endif // DECA_KERNELS_GEMM_SIM_H
