/**
 * @file
 * Cycle-level multicore simulation of one compressed GeMM run.
 *
 * Every core runs the selected kernel variant against its own stream of
 * compressed tiles while all cores share the memory channel:
 *
 *  - Engine::None       : tload tiles straight from memory (BF16 base).
 *  - Engine::Software   : AVX decompression double-buffered with AMX
 *                         (libxsmm structure, Fig. 2), with optional
 *                         vector-scaling what-ifs (Fig. 15).
 *  - Engine::Deca       : per-core DECA PE with dual loaders, invoked
 *                         either with store+fence (Fig. 9) or TEPL
 *                         (Fig. 10), with the integration ablation axes
 *                         of Fig. 17.
 *
 * The simulation reports steady-state tiles/s, TFLOPS, and component
 * utilizations (memory channel, TMUL, AVX or DECA) for Table 3.
 *
 * Two fidelity tiers share this entry point. The default simulates
 * every tile. With sim::SimParams::sampleMode set, runGemm and
 * runGemmSteady simulate only warmupTiles + measureTiles tiles per
 * core, verify the measurement window reached steady state
 * (sim/sampling.h), fit the per-tile cost against each tile's
 * compressed footprint, and integrate the fit over the exact byte
 * schedule of the remaining tiles — reproducing the full-simulation
 * numbers within the CI-pinned error bound at a fraction of the
 * events. Non-convergent windows escalate and finally fall back to
 * the full simulation.
 */

#ifndef DECA_KERNELS_GEMM_SIM_H
#define DECA_KERNELS_GEMM_SIM_H

#include <memory>
#include <string>
#include <vector>

#include "deca/pipeline.h"
#include "deca/tepl_queue.h"
#include "kernels/kernel_config.h"
#include "kernels/workload.h"
#include "sim/coro.h"
#include "sim/fetch_stream.h"
#include "sim/memory_system.h"
#include "sim/params.h"
#include "sim/resource.h"

namespace deca::kernels {

/** Measured outcome of one GeMM simulation. */
struct GemmResult
{
    std::string kernel;
    std::string schemeName;
    u32 batchN = 1;
    Cycles cycles = 0;
    u64 tilesProcessed = 0;

    double tilesPerSecond = 0.0;
    double tflops = 0.0;

    double utilMem = 0.0;
    double utilTmul = 0.0;
    double utilVec = 0.0;  ///< AVX utilization (software engines)
    double utilDeca = 0.0; ///< DECA PE utilization (DECA engines)

    // Host-core front-end statistics (all zero with the default
    // unbounded/no-flush configuration).
    u64 hostFlushes = 0;  ///< pipeline flushes across all cores
    u64 teplSquashed = 0; ///< TEPL queue entries squashed by flushes
    u64 teplReissued = 0; ///< squashed TEPLs re-allocated after redirect

    // Sampled-tier provenance (untouched by the full simulation; the
    // scenario output never prints these, so full and sampled runs
    // stay structurally identical).
    bool sampled = false;     ///< result was extrapolated, not run out
    u32 sampledTilesPerCore = 0; ///< tiles actually simulated per core

    /** Speedup of this result over a baseline result. */
    double
    speedupOver(const GemmResult &base) const
    {
        return tflops / base.tflops;
    }
};

/**
 * Completion probe of the sampled tier: the simulation records every
 * core's tile-completion timestamps plus end-of-run busy totals.
 * Busy time is deterministic per unit of scheduled work (bytes moved,
 * tile operations executed, PE passes run) no matter when it happens,
 * so the driver estimates the target window's utilizations by
 * dividing each engine's busy total by the truncated run's scheduled
 * work and re-multiplying by the target window's schedule — immune to
 * the ramp/drain timing skew a short run's wall-clock windows suffer.
 */
struct SampleProbe
{
    /** Per-core, per-tile completion cycle. */
    std::vector<std::vector<Cycles>> tileEnd;

    // End-of-run totals, filled by run().
    double memBusy = 0.0; ///< busy channel-cycles
    u64 memBytes = 0;     ///< bytes served
    u64 tmulBusy = 0;     ///< summed over cores
    u64 avxBusy = 0;
    u64 decaBusy = 0;
    /** Per-pool-tile DECA PE cycles (the simulation's precomputed
     *  schedule, needed to weigh the PE's per-tile work). */
    std::vector<Cycles> decaPoolCycles;
};

/** Pool tile index / compressed byte footprint of the t-th tile core
 *  `c` processes (the schedule both fidelity tiers share; cores are
 *  offset into the pool so they do not run in lockstep). */
u32 scheduledPoolIndex(u32 c, u32 t, u32 pool_size);
u64 scheduledTileBytes(const TilePool &pool, u32 c, u32 t);

/** Process-wide hit/miss counters of the sampled tier's warm-up
 *  baseline cache (params.sampleBaselineCache): sweeps that share
 *  (machine, kernel, workload, baseline length) modulo the swept knob
 *  re-use one baseline run instead of re-simulating it per cell. */
struct BaselineCacheStats
{
    u64 hits = 0;
    u64 misses = 0;
};
BaselineCacheStats sampleBaselineCacheStats();

/** One compressed-GeMM run on the simulated multicore. */
class GemmSimulation
{
  public:
    GemmSimulation(const sim::SimParams &params, const KernelConfig &config,
                   const GemmWorkload &workload, const TilePool &pool);
    ~GemmSimulation();

    GemmSimulation(const GemmSimulation &) = delete;
    GemmSimulation &operator=(const GemmSimulation &) = delete;

    /** Attach the sampled-tier completion probe (before run()). */
    void
    attachProbe(SampleProbe *probe)
    {
        probe_ = probe;
    }

    /** Execute the run and return the measurements. */
    GemmResult run();

  private:
    struct Core;

    /** Pool tile index that core `c` processes as its t-th tile. */
    u32 poolIndex(u32 c, u32 t) const;
    u64 tileBytes(u32 c, u32 t) const;
    Cycles decaTileCycles(u32 c, u32 t) const;

    /** Latency of the core's read of a finished output tile. */
    Cycles outputReadLatency() const;

    // Simulation processes (one per core each). Every kernel's
    // instruction stream walks through the core's HostCore front end
    // via a dispatcher coroutine; the remaining processes are the
    // execution back end that completes instructions out of band.
    sim::SimTask swDispatchProc(u32 c);
    sim::SimTask swDecompressProc(u32 c);
    sim::SimTask swGemmProc(u32 c);
    sim::SimTask decaFeedProc(u32 c, u32 loader);
    sim::SimTask decaPeProc(u32 c);
    sim::SimTask decaTransferProc(u32 c);
    sim::SimTask teplDispatchProc(u32 c);
    sim::SimTask teplGemmProc(u32 c);
    sim::SimTask storeFenceDispatchProc(u32 c);
    sim::SimTask storeFenceExecProc(u32 c);

    /** TEPL queue issue callback + invocation-store arrival. */
    static void onTeplIssue(void *ctx, const accel::TeplEntry &e);
    static void teplArrival(void *ctx, u64 arg);

    /** Record a per-core tile completion into the attached probe. */
    void noteTileDone(Core &pc, u32 t);
    /** Admit fetched tiles to the PE in program order. */
    void pumpFirstPass(Core &pc);
    /** A PE pass or transfer finished for a squashed/superseded TEPL
     *  attempt: queue the redo now or flag it for the re-arrival. */
    void discardAttempt(Core &pc, u32 tile);
    void finishCore(u32 c);
    void coreFinished();

    sim::SimParams params_;
    KernelConfig config_;
    GemmWorkload workload_;
    const TilePool &pool_;

    sim::EventQueue q_;
    std::unique_ptr<sim::MemorySystem> mem_;
    std::vector<std::unique_ptr<Core>> cores_;

    /** Per-pool-tile DECA pipeline cycles (precomputed). */
    std::vector<Cycles> deca_cycles_;
    /** Software decompression cycles per tile (scheme-constant). */
    Cycles sw_cycles_ = 0;

    /** Sampled-tier probe (null in full-fidelity runs). */
    SampleProbe *probe_ = nullptr;

    u32 cores_done_ = 0;
    /** Cycle at which the last core finished its stream. With
     *  periodic flushes the per-core flush processes outlive the
     *  kernel by up to one period, so the run is measured to this
     *  point rather than to event-queue drain. */
    Cycles done_cycle_ = 0;
};

/** Convenience driver: build the pool and run one simulation. With
 *  params.sampleMode the run is truncated and extrapolated instead of
 *  executed to the last tile (deferring to the exact full run when
 *  sampling would not save a real margin). */
GemmResult runGemm(const sim::SimParams &params, const KernelConfig &config,
                   const GemmWorkload &workload);

/**
 * Steady-state measurement: runs the workload twice — once with only
 * `warmup_tiles` per core and once with warmup plus the workload's
 * tilesPerCore — and reports the difference, removing cold-start ramp
 * (empty prefetch windows, initial channel burst) from rates and
 * utilizations. This mirrors measuring the paper's ~250M-parameter FC
 * cascades in their bandwidth-steady regime.
 *
 * With params.sampleMode the long run is replaced by two truncated
 * runs — the warm-up run itself (which the full path also needs) and
 * a second ending measureTiles later — whose completion-time
 * difference gives the exact steady growth rate to extrapolate the
 * full finish from (sim/sampling.h). When sampling would not undercut
 * the full path by a real margin the sampled path defers to the full
 * one and the result is byte-identical.
 */
GemmResult runGemmSteady(const sim::SimParams &params,
                         const KernelConfig &config,
                         const GemmWorkload &workload,
                         u32 warmup_tiles = 48);

} // namespace deca::kernels

#endif // DECA_KERNELS_GEMM_SIM_H
