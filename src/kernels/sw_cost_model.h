/**
 * @file
 * Cycle cost of the libxsmm-style AVX decompression sequence, including
 * the vector-scaling what-ifs of Section 7 / Figure 15.
 *
 * Per-tile vector-op totals come from the per-row counts documented in
 * roofsurface/signature.h, split into memory ops (loads/stores of
 * cache-line operands) and compute ops (expands, permutes, converts,
 * mask arithmetic):
 *
 *   - AVX2048 ("wider"): compute ops cover 4 rows each, but every memory
 *     op still executes as 4 cache-line-sized operations, so per-row cost
 *     becomes compute/4 + mem (Sec. 9.1 modelling).
 *   - 4x units ("more"): issue is still bounded by the core's front end
 *     (maxVectorIssuePerCycle), since the superscalar width is not
 *     scaled.
 */

#ifndef DECA_KERNELS_SW_COST_MODEL_H
#define DECA_KERNELS_SW_COST_MODEL_H

#include "compress/scheme.h"
#include "kernels/kernel_config.h"
#include "sim/params.h"

namespace deca::kernels {

/** Vector-op breakdown of one tile row's decompression. */
struct VopBreakdown
{
    u32 memOps;     ///< cache-line loads/stores
    u32 computeOps; ///< everything else
    u32 total() const { return memOps + computeOps; }
};

/** Per-row op breakdown for a scheme (see signature.h derivation). */
VopBreakdown swVopBreakdownPerRow(const compress::CompressionScheme &s);

/** Effective vector ops per tile under a scaling variant. */
double swVopsPerTile(const compress::CompressionScheme &s,
                     VectorScaling scaling);

/**
 * Cycles the core's vector engine needs per tile: ops divided by the
 * effective issue rate (units capped by the front end).
 */
Cycles swDecompressCycles(const compress::CompressionScheme &s,
                          VectorScaling scaling, const sim::SimParams &p);

} // namespace deca::kernels

#endif // DECA_KERNELS_SW_COST_MODEL_H
