/**
 * @file
 * Kernel variant descriptors: which decompression engine runs, how a DECA
 * PE is integrated with the core (the Fig. 17 ablation axes), and which
 * CPU vector-engine scaling alternative is modelled (Fig. 15).
 */

#ifndef DECA_KERNELS_KERNEL_CONFIG_H
#define DECA_KERNELS_KERNEL_CONFIG_H

#include <string>

#include "deca/deca_config.h"

namespace deca::kernels {

/** Who performs tile decompression. */
enum class Engine
{
    /** Uncompressed BF16: tiles tload directly from memory, no
     *  decompression at all. */
    None,
    /** libxsmm-style AVX software sequence on the core (Sec. 2.4). */
    Software,
    /** DECA near-core accelerator (Secs. 5-6). */
    Deca,
};

/** CPU vector-resource scaling alternatives for the Software engine. */
enum class VectorScaling
{
    Standard,   ///< 2 AVX-512 units (the SPR baseline)
    MoreUnits,  ///< 4x AVX-512 units, superscalar width unchanged
    WiderUnits, ///< AVX2048: 4x wider ops, memory ops still line-sized
};

/** How the core invokes the DECA PE (Sec. 5.2/5.3). */
enum class Invocation
{
    StoreFence, ///< memory-mapped stores + per-iteration fences (Fig. 9)
    Tepl,       ///< out-of-order TEPL instructions (Fig. 10)
};

/** DECA integration feature set — the Fig. 17 ablation. */
struct DecaIntegration
{
    /** Read compressed tiles through the L2 (enables the L2 stream
     *  prefetcher) instead of directly from the LLC. */
    bool readsL2 = true;
    /** Use DECA's own MSHR-occupancy-driven prefetcher. */
    bool decaPrefetcher = true;
    /** Deliver output tiles via TOut registers instead of the L2. */
    bool toutRegs = true;
    Invocation invocation = Invocation::Tepl;
    /** DECA Loaders (and TOut registers, and max in-flight TEPLs).
     *  The paper's design has two; one disables the hardware double
     *  buffering (ablation). */
    u32 numLoaders = 2;

    /** The paper's final DECA configuration (all features on). */
    static DecaIntegration
    full()
    {
        return DecaIntegration{};
    }

    /** The Fig. 17 "Base" configuration (everything off). */
    static DecaIntegration
    base()
    {
        return DecaIntegration{false, false, false,
                               Invocation::StoreFence};
    }

    std::string describe() const;
};

/** Complete kernel configuration for one simulation run. */
struct KernelConfig
{
    Engine engine = Engine::Software;
    VectorScaling vectorScaling = VectorScaling::Standard;
    accel::DecaConfig deca = accel::decaBestConfig();
    DecaIntegration integration = DecaIntegration::full();

    static KernelConfig
    uncompressedBf16()
    {
        KernelConfig k;
        k.engine = Engine::None;
        return k;
    }

    static KernelConfig
    software(VectorScaling vs = VectorScaling::Standard)
    {
        KernelConfig k;
        k.engine = Engine::Software;
        k.vectorScaling = vs;
        return k;
    }

    static KernelConfig
    decaKernel(accel::DecaConfig cfg = accel::decaBestConfig(),
               DecaIntegration integ = DecaIntegration::full())
    {
        KernelConfig k;
        k.engine = Engine::Deca;
        k.deca = cfg;
        k.integration = integ;
        return k;
    }

    std::string describe() const;
};

} // namespace deca::kernels

#endif // DECA_KERNELS_KERNEL_CONFIG_H
