/**
 * @file
 * First-order energy model for the core-freeing claim of Section 9.1:
 * "the extra cores can either be freed-up for other workloads ... or
 * power-gated to save energy."
 *
 * Energy = active-core power x active cores x time
 *        + gated-core power x gated cores x time
 *        + DECA PE energy (utilization-weighted)
 *        + uncore/fabric power x time
 *        + DRAM access energy per byte.
 *
 * Constants are first-order server-class figures (documented per field)
 * — the comparisons between configurations, not the absolute joules,
 * are the point.
 */

#ifndef DECA_KERNELS_ENERGY_MODEL_H
#define DECA_KERNELS_ENERGY_MODEL_H

#include "compress/scheme.h"
#include "kernels/gemm_sim.h"
#include "sim/params.h"

namespace deca::kernels {

/** Power/energy constants of the modelled server. */
struct EnergyParams
{
    /** Average active-core power running the GeMM loop (W). */
    double corePowerW = 3.5;
    /** Power-gated core residual power (W). */
    double gatedCorePowerW = 0.25;
    /** One DECA PE at full utilization (W); ~0.2% of die area scales to
     *  a commensurately small power budget. */
    double decaPePowerW = 0.20;
    /** Shared uncore/mesh/LLC power (W). */
    double uncorePowerW = 45.0;
    /** DRAM energy per byte: ~6 pJ/b HBM, ~12 pJ/b DDR5. */
    double hbmEnergyPerByte = 6e-12 * 8;
    double ddrEnergyPerByte = 12e-12 * 8;
};

/** Energy accounting for one simulated GeMM run. */
struct EnergyResult
{
    double seconds = 0.0;
    double coreJ = 0.0;
    double gatedJ = 0.0;
    double decaJ = 0.0;
    double uncoreJ = 0.0;
    double dramJ = 0.0;

    double
    totalJ() const
    {
        return coreJ + gatedJ + decaJ + uncoreJ + dramJ;
    }

    /** Energy-delay product (J*s). */
    double edp() const { return totalJ() * seconds; }

    /** Joules per processed tile. */
    double joulesPerTile(u64 tiles) const { return totalJ() / tiles; }
};

/**
 * Estimate the energy of a GeMM run.
 *
 * @param r The simulation result (active cores = the run's core count).
 * @param scheme The compression scheme (determines DRAM bytes).
 * @param params The machine simulated.
 * @param total_cores Cores present on the die; cores beyond the run's
 *        active count are charged at gated power.
 * @param ep Energy constants.
 */
EnergyResult estimateEnergy(const GemmResult &r,
                            const compress::CompressionScheme &scheme,
                            const sim::SimParams &params, u32 total_cores,
                            const EnergyParams &ep = EnergyParams{});

} // namespace deca::kernels

#endif // DECA_KERNELS_ENERGY_MODEL_H
