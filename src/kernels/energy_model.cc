#include "kernels/energy_model.h"

#include "common/logging.h"

namespace deca::kernels {

EnergyResult
estimateEnergy(const GemmResult &r,
               const compress::CompressionScheme &scheme,
               const sim::SimParams &params, u32 total_cores,
               const EnergyParams &ep)
{
    DECA_ASSERT(total_cores >= params.cores,
                "die cannot have fewer cores than the run used");
    EnergyResult e;
    e.seconds = static_cast<double>(r.cycles) / params.freqHz();

    const u32 active = params.cores;
    const u32 gated = total_cores - active;
    e.coreJ = ep.corePowerW * active * e.seconds;
    e.gatedJ = ep.gatedCorePowerW * gated * e.seconds;
    // DECA PEs burn power proportionally to their utilization; inactive
    // PEs (software runs) burn nothing (clock gated).
    e.decaJ = ep.decaPePowerW * active * r.utilDeca * e.seconds;
    e.uncoreJ = ep.uncorePowerW * e.seconds;

    const double bytes = static_cast<double>(r.tilesProcessed) *
                         scheme.bytesPerTile();
    const double per_byte = params.memKind == sim::MemoryKind::HBM
                                ? ep.hbmEnergyPerByte
                                : ep.ddrEnergyPerByte;
    e.dramJ = bytes * per_byte;
    return e;
}

} // namespace deca::kernels
