#include "kernels/sw_cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "roofsurface/signature.h"

namespace deca::kernels {

using compress::CompressionScheme;
using compress::ElemFormat;

VopBreakdown
swVopBreakdownPerRow(const CompressionScheme &s)
{
    // Memory ops: the compressed-chunk load and the software-buffer
    // store, plus the scale-factor load for MX group quantization;
    // everything else in softwareVopsPerTileRow's derivation is
    // compute. Dense BF16 bypasses the sequence entirely.
    const u32 total = roofsurface::softwareVopsPerTileRow(s);
    if (total == 0)
        return VopBreakdown{0, 0};
    const u32 mem = 2 + (s.groupQuant ? 1 : 0);
    return VopBreakdown{mem, total - mem};
}

double
swVopsPerTile(const CompressionScheme &s, VectorScaling scaling)
{
    const VopBreakdown row = swVopBreakdownPerRow(s);
    if (row.total() == 0)
        return 0.0;
    // Consistency check against the Roof-Surface signature model.
    DECA_ASSERT(row.total() == roofsurface::softwareVopsPerTileRow(s),
                "cost model diverged from the signature model");

    double per_row;
    switch (scaling) {
      case VectorScaling::Standard:
      case VectorScaling::MoreUnits:
        per_row = row.total();
        break;
      case VectorScaling::WiderUnits:
        per_row = static_cast<double>(row.computeOps) / 4.0 + row.memOps;
        break;
      default:
        DECA_PANIC("unhandled vector scaling");
    }
    return per_row * kTileRows;
}

Cycles
swDecompressCycles(const CompressionScheme &s, VectorScaling scaling,
                   const sim::SimParams &p)
{
    const double vops = swVopsPerTile(s, scaling);
    if (vops == 0.0)
        return 0;
    u32 units = p.avxUnitsPerCore;
    if (scaling == VectorScaling::MoreUnits)
        units *= 4;
    // The front end bounds vector issue regardless of unit count.
    const u32 issue = std::min(units, p.maxVectorIssuePerCycle);
    return static_cast<Cycles>(std::ceil(vops / issue));
}

} // namespace deca::kernels
