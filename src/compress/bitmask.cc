#include "compress/bitmask.h"

#include <bit>

#include "common/logging.h"

namespace deca::compress {

u32
TileBitmask::popcount() const
{
    u32 n = 0;
    for (u64 w : words_)
        n += static_cast<u32>(std::popcount(w));
    return n;
}

u32
TileBitmask::popcountWindow(u32 begin, u32 len) const
{
    DECA_ASSERT(begin + len <= kTileElems, "window out of range");
    u32 n = 0;
    for (u32 i = begin; i < begin + len; ++i)
        n += get(i) ? 1 : 0;
    return n;
}

std::vector<i32>
TileBitmask::expansionIndices(u32 begin, u32 len) const
{
    DECA_ASSERT(begin + len <= kTileElems, "window out of range");
    std::vector<i32> idx(len, -1);
    i32 running = 0;  // prefix sum of ones inside the window
    for (u32 j = 0; j < len; ++j) {
        if (get(begin + j)) {
            idx[j] = running;
            ++running;
        }
    }
    return idx;
}

std::array<u8, kTileElems / 8>
TileBitmask::toBytes() const
{
    std::array<u8, kTileElems / 8> out{};
    for (u32 w = 0; w < words_.size(); ++w) {
        for (u32 b = 0; b < 8; ++b)
            out[w * 8 + b] = static_cast<u8>(words_[w] >> (8 * b));
    }
    return out;
}

TileBitmask
TileBitmask::fromBytes(const std::array<u8, kTileElems / 8> &b)
{
    TileBitmask m;
    for (u32 w = 0; w < m.words_.size(); ++w) {
        u64 v = 0;
        for (u32 i = 0; i < 8; ++i)
            v |= static_cast<u64>(b[w * 8 + i]) << (8 * i);
        m.words_[w] = v;
    }
    return m;
}

} // namespace deca::compress
