/**
 * @file
 * Compression scheme descriptors (quantization format × density) and the
 * size/arithmetic-intensity math of Section 2.2.
 *
 * A scheme with Q quantization bits and density d stores, per 512-element
 * tile: 512*d elements of Q bits each, a 512-bit bitmask when d < 1, and
 * one 8-bit E8M0 scale per 32-element group when group quantization is on.
 * The paper's Compression Factor 16/(Q*d + 1) corresponds to the sparse
 * case without group scales.
 */

#ifndef DECA_COMPRESS_SCHEME_H
#define DECA_COMPRESS_SCHEME_H

#include <string>
#include <vector>

#include "common/mx_scale.h"
#include "common/types.h"
#include "compress/element_format.h"

namespace deca::compress {

/** Full description of how a weight matrix is compressed. */
struct CompressionScheme
{
    std::string name;        ///< e.g. "Q8_20%", "MXFP4", "BF16".
    ElemFormat format = ElemFormat::BF16;
    /** Fraction of nonzero weights, in (0, 1]. 1.0 means dense. */
    double density = 1.0;
    /** True when a shared E8M0 scale is stored per group (MX-style). */
    bool groupQuant = false;
    u32 groupSize = kMxGroupSize;

    /** True when a bitmask is stored (any density below 1.0). */
    bool sparse() const { return density < 1.0; }

    u32 quantBits() const { return elemFormatBits(format); }

    /** Expected nonzero count in one 512-element tile. */
    double
    nonzerosPerTile() const
    {
        return density * kTileElems;
    }

    /** Expected bytes of nonzero data per tile (bit-packed). */
    double
    dataBytesPerTile() const
    {
        return nonzerosPerTile() * quantBits() / 8.0;
    }

    /** Bitmask bytes per tile (zero for dense schemes). */
    double
    bitmaskBytesPerTile() const
    {
        return sparse() ? kTileElems / 8.0 : 0.0;
    }

    /** Scale-factor bytes per tile (zero without group quantization). */
    double
    scaleBytesPerTile() const
    {
        return groupQuant ? static_cast<double>(kTileElems) / groupSize
                          : 0.0;
    }

    /** Total compressed bytes fetched from memory per tile. */
    double
    bytesPerTile() const
    {
        return dataBytesPerTile() + bitmaskBytesPerTile() +
               scaleBytesPerTile();
    }

    /** Compression factor relative to a dense BF16 tile (1 KB). */
    double
    compressionFactor() const
    {
        return static_cast<double>(kTileBytes) / bytesPerTile();
    }

    /**
     * matriX-to-Memory arithmetic intensity (Sec. 4.1): matrix (tile)
     * operations per compressed byte loaded from memory.
     */
    double
    aixm() const
    {
        return 1.0 / bytesPerTile();
    }

    /** Traditional FLOP/byte arithmetic intensity for batch size n. */
    double
    flopPerByte(u32 n) const
    {
        return kFmasPerTileOpPerBatchRow * static_cast<double>(n) /
               bytesPerTile();
    }
};

/** Uncompressed dense BF16 baseline. */
CompressionScheme schemeBf16();

/** BF16 values with unstructured sparsity (paper's Q16_d%). */
CompressionScheme schemeQ16(double density);

/** Dense BF8 (paper's Q8 / BF8 100%). */
CompressionScheme schemeQ8Dense();

/** BF8 with unstructured sparsity (paper's Q8_d%). */
CompressionScheme schemeQ8(double density);

/** Dense MXFP4: E2M1 elements with E8M0 group scales (paper's Q4). */
CompressionScheme schemeMxfp4();

/** MXFP4 with unstructured sparsity (supported by DECA; not in libxsmm). */
CompressionScheme schemeMxfp4Sparse(double density);

/**
 * The twelve schemes of Figures 12/13 in the paper's order of increasing
 * compression factor: Q16_50%, Q8, Q16_30%, Q8_50%, Q4, Q16_20%, Q8_30%,
 * Q16_10%, Q8_20%, Q16_5%, Q8_10%, Q8_5%.
 */
std::vector<CompressionScheme> paperSchemes();

/** The subset of paperSchemes() that is sparse. */
std::vector<CompressionScheme> paperSparseSchemes();

} // namespace deca::compress

#endif // DECA_COMPRESS_SCHEME_H
