/**
 * @file
 * Dense AMX weight tiles: 16 rows × 32 BF16 columns (1 KB), the unit the
 * TMUL consumes and the unit every decompression path produces.
 */

#ifndef DECA_COMPRESS_TILE_H
#define DECA_COMPRESS_TILE_H

#include <array>

#include "common/bf16.h"
#include "common/types.h"

namespace deca::compress {

/** A dense 16×32 BF16 tile in row-major order. */
class DenseTile
{
  public:
    DenseTile() = default;

    Bf16 &
    at(u32 row, u32 col)
    {
        return elems_[row * kTileCols + col];
    }

    Bf16
    at(u32 row, u32 col) const
    {
        return elems_[row * kTileCols + col];
    }

    /** Flat (row-major) element access, index in [0, 512). */
    Bf16 &operator[](u32 i) { return elems_[i]; }
    Bf16 operator[](u32 i) const { return elems_[i]; }

    /** Count nonzero elements. */
    u32
    countNonzeros() const
    {
        u32 n = 0;
        for (const auto &e : elems_)
            n += e.isZero() ? 0 : 1;
        return n;
    }

    /** Density of the tile in [0, 1]. */
    double
    density() const
    {
        return static_cast<double>(countNonzeros()) / kTileElems;
    }

    friend bool
    operator==(const DenseTile &a, const DenseTile &b)
    {
        return a.elems_ == b.elems_;
    }

  private:
    std::array<Bf16, kTileElems> elems_{};
};

} // namespace deca::compress

#endif // DECA_COMPRESS_TILE_H
