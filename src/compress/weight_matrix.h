/**
 * @file
 * Weight matrices, synthetic weight generation, magnitude pruning, and
 * tiling into AMX weight tiles.
 *
 * FC-layer weight matrices are stored as M (output features) × K (input
 * features) BF16 and split into 16×32 tiles: M/16 tile-rows by K/32
 * tile-columns. A compressed matrix stores one CompressedTile per tile.
 */

#ifndef DECA_COMPRESS_WEIGHT_MATRIX_H
#define DECA_COMPRESS_WEIGHT_MATRIX_H

#include <vector>

#include "common/rng.h"
#include "compress/compressed_tile.h"
#include "compress/tile.h"

namespace deca::compress {

/** A dense BF16 weight matrix with tile access. */
class WeightMatrix
{
  public:
    /** Construct a zeroed matrix; rows/cols must be tile multiples. */
    WeightMatrix(u32 rows, u32 cols);

    u32 rows() const { return rows_; }
    u32 cols() const { return cols_; }
    u32 tileRows() const { return rows_ / kTileRows; }
    u32 tileCols() const { return cols_ / kTileCols; }
    u64 numTiles() const { return u64{tileRows()} * tileCols(); }
    u64 numElems() const { return u64{rows_} * cols_; }

    Bf16 &at(u32 r, u32 c) { return data_[u64{r} * cols_ + c]; }
    Bf16 at(u32 r, u32 c) const { return data_[u64{r} * cols_ + c]; }

    /** Extract the dense tile at tile coordinates (tr, tc). */
    DenseTile tile(u32 tr, u32 tc) const;

    /** Overwrite the tile at (tr, tc). */
    void setTile(u32 tr, u32 tc, const DenseTile &t);

    /** Fraction of nonzero elements. */
    double density() const;

  private:
    u32 rows_;
    u32 cols_;
    std::vector<Bf16> data_;
};

/**
 * Generate a synthetic Gaussian weight matrix with exactly the requested
 * density: the (1 - density) fraction of smallest-magnitude weights is
 * pruned to zero, mimicking magnitude pruning (SparseGPT-style outcomes).
 */
WeightMatrix generateWeights(u32 rows, u32 cols, double density, Rng &rng,
                             float sigma = 0.02f);

/**
 * Prune the smallest-magnitude weights of an existing matrix in place
 * until only `density` fraction remain nonzero.
 */
void magnitudePrune(WeightMatrix &w, double density);

/** A weight matrix compressed tile-by-tile under one scheme. */
class CompressedMatrix
{
  public:
    CompressedMatrix(const WeightMatrix &w, const CompressionScheme &scheme);

    const CompressionScheme &scheme() const { return scheme_; }
    u32 tileRows() const { return tile_rows_; }
    u32 tileCols() const { return tile_cols_; }
    u64 numTiles() const { return tiles_.size(); }

    const CompressedTile &
    tile(u32 tr, u32 tc) const
    {
        return tiles_[u64{tr} * tile_cols_ + tc];
    }

    const CompressedTile &tileAt(u64 flat) const { return tiles_[flat]; }

    /** Total compressed bytes across all tiles. */
    u64 totalBytes() const;

    /** Measured compression factor vs the dense BF16 matrix. */
    double measuredCompressionFactor() const;

  private:
    CompressionScheme scheme_;
    u32 tile_rows_;
    u32 tile_cols_;
    std::vector<CompressedTile> tiles_;
};

} // namespace deca::compress

#endif // DECA_COMPRESS_WEIGHT_MATRIX_H
