/**
 * @file
 * Structured N:M sparsity support (Table 2: DECA handles structured as
 * well as unstructured sparsity — a structured pattern is just a
 * constrained bitmask).
 *
 * N:M sparsity keeps the N largest-magnitude weights in every group of
 * M consecutive elements along a row (2:4 is the TensorCore/VEGETA
 * pattern). Because at most N of every M bitmask bits are set, DECA's
 * per-window nonzero counts — and therefore its bubble behaviour —
 * become deterministic.
 */

#ifndef DECA_COMPRESS_STRUCTURED_H
#define DECA_COMPRESS_STRUCTURED_H

#include "compress/weight_matrix.h"

namespace deca::compress {

/**
 * Prune a matrix in place to N:M structured sparsity along rows: in
 * every aligned group of M elements, only the N largest magnitudes
 * survive.
 */
void structuredPrune(WeightMatrix &w, u32 n, u32 m);

/** True when every aligned M-group of the matrix has at most N nonzeros. */
bool checkStructured(const WeightMatrix &w, u32 n, u32 m);

/**
 * Scheme descriptor for an N:M structured variant of a quantized format
 * (density = N/M, stored with the same bitmask format — DECA needs no
 * special casing).
 */
CompressionScheme schemeStructured(ElemFormat format, u32 n, u32 m);

} // namespace deca::compress

#endif // DECA_COMPRESS_STRUCTURED_H
