/**
 * @file
 * Golden-model tile decompression (Figure 1, right): the functional
 * specification every hardware/software decompression path must match.
 *
 * The steps mirror DECA's pipeline: dequantize the nonzero codes, expand
 * them into their dense positions using the bitmask, and apply group
 * scales. The output is a dense BF16 tile ready for the TMUL.
 */

#ifndef DECA_COMPRESS_REFERENCE_DECOMPRESS_H
#define DECA_COMPRESS_REFERENCE_DECOMPRESS_H

#include "compress/compressed_tile.h"
#include "compress/tile.h"

namespace deca::compress {

/** Decompress one tile functionally (the golden reference). */
DenseTile referenceDecompress(const CompressedTile &ct);

/**
 * Compress-then-decompress round trip: the lossy projection of a tile onto
 * the scheme's representable values. Useful for accuracy studies.
 */
DenseTile roundTrip(const DenseTile &tile, const CompressionScheme &scheme);

/**
 * Maximum absolute element error between two tiles (for quantization
 * accuracy tests).
 */
float maxAbsError(const DenseTile &a, const DenseTile &b);

} // namespace deca::compress

#endif // DECA_COMPRESS_REFERENCE_DECOMPRESS_H
