/**
 * @file
 * Offline weight compression (Figure 1, left): quantize a dense BF16 tile
 * to a low-bit format, optionally with MX group scales, and pack the
 * nonzeros plus bitmask into the compressed memory image.
 */

#ifndef DECA_COMPRESS_QUANTIZER_H
#define DECA_COMPRESS_QUANTIZER_H

#include "compress/compressed_tile.h"
#include "compress/tile.h"

namespace deca::compress {

/**
 * Compress one dense tile under the given scheme.
 *
 * Zero elements are treated as pruned: for sparse schemes they are omitted
 * from the nonzero array and cleared in the bitmask. For dense schemes all
 * 512 elements (including zeros) are stored.
 */
CompressedTile compressTile(const DenseTile &tile,
                            const CompressionScheme &scheme);

/**
 * Quantize one scalar to the scheme's element format and return the code.
 * For group-quantized schemes the value is divided by the group scale
 * before encoding.
 */
u32 quantizeValue(float value, const CompressionScheme &scheme,
                  float group_scale);

/** Decode one element code back to a float (before group scaling). */
float dequantizeCode(u32 code, const CompressionScheme &scheme);

/**
 * Compute per-group E8M0 scales for a tile under an MX-style scheme.
 * Groups cover consecutive dense positions; each scale is chosen from the
 * group's max magnitude per the OCP algorithm.
 */
std::vector<u8> computeGroupScales(const DenseTile &tile,
                                   const CompressionScheme &scheme);

} // namespace deca::compress

#endif // DECA_COMPRESS_QUANTIZER_H
