/**
 * @file
 * The in-memory image of one compressed weight tile: the three data
 * structures DECA's Loaders fetch (nonzero array, bitmask, scale factors)
 * plus the scheme needed to interpret them (Figure 1 / Section 5.2).
 */

#ifndef DECA_COMPRESS_COMPRESSED_TILE_H
#define DECA_COMPRESS_COMPRESSED_TILE_H

#include <vector>

#include "common/types.h"
#include "compress/bitmask.h"
#include "compress/scheme.h"

namespace deca::compress {

/** One compressed tile as laid out in memory. */
struct CompressedTile
{
    CompressionScheme scheme;

    /** Bit-packed quantized nonzero codes in tile row-major order. */
    std::vector<u8> data;

    /** Number of quantized codes stored in `data`. */
    u32 numNonzeros = 0;

    /** Present iff scheme.sparse(). */
    TileBitmask bitmask;

    /** E8M0 scale codes, one per group, iff scheme.groupQuant. Groups are
     *  defined over the original dense element positions. */
    std::vector<u8> scales;

    /** Bytes of the nonzero data structure. */
    u64 dataBytes() const { return data.size(); }

    /** Bytes of the bitmask structure (0 when dense). */
    u64
    bitmaskBytes() const
    {
        return scheme.sparse() ? kTileElems / 8 : 0;
    }

    /** Bytes of the scale-factor structure (0 without group quant). */
    u64 scaleBytes() const { return scales.size(); }

    /** Total bytes that must be fetched from memory for this tile. */
    u64
    totalBytes() const
    {
        return dataBytes() + bitmaskBytes() + scaleBytes();
    }
};

} // namespace deca::compress

#endif // DECA_COMPRESS_COMPRESSED_TILE_H
