/**
 * @file
 * 512-bit sparsity bitmask for one tile.
 *
 * Bit i set means tile element i (row-major) is nonzero and stored in the
 * nonzero array. The mask supports the window operations DECA's POPCNT and
 * parallel-prefix-sum circuits perform: counting ones inside a W-element
 * window and producing crossbar expansion indices.
 */

#ifndef DECA_COMPRESS_BITMASK_H
#define DECA_COMPRESS_BITMASK_H

#include <array>
#include <vector>

#include "common/types.h"

namespace deca::compress {

/** Sparsity bitmask covering the 512 elements of one tile. */
class TileBitmask
{
  public:
    TileBitmask() = default;

    void
    set(u32 i, bool v)
    {
        const u64 bit = u64{1} << (i & 63);
        if (v)
            words_[i >> 6] |= bit;
        else
            words_[i >> 6] &= ~bit;
    }

    bool
    get(u32 i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    /** Total number of set bits (tile nonzero count). */
    u32 popcount() const;

    /** Number of set bits among elements [begin, begin+len). */
    u32 popcountWindow(u32 begin, u32 len) const;

    /**
     * Expansion indices for the window [begin, begin+len): for each output
     * lane j in the window, the index (relative to the window's first
     * nonzero) of the compacted nonzero that lands there, or -1 when the
     * lane is a zero. This is what the prefix-sum + crossbar compute.
     */
    std::vector<i32> expansionIndices(u32 begin, u32 len) const;

    /** Serialize to the 64-byte memory image. */
    std::array<u8, kTileElems / 8> toBytes() const;

    /** Deserialize from the 64-byte memory image. */
    static TileBitmask fromBytes(const std::array<u8, kTileElems / 8> &b);

    friend bool
    operator==(const TileBitmask &a, const TileBitmask &b)
    {
        return a.words_ == b.words_;
    }

  private:
    std::array<u64, kTileElems / 64> words_{};
};

} // namespace deca::compress

#endif // DECA_COMPRESS_BITMASK_H
