#include "compress/element_format.h"

#include "common/logging.h"

namespace deca::compress {

const MinifloatSpec &
elemFormatSpec(ElemFormat f)
{
    switch (f) {
      case ElemFormat::BF8:
        return kBf8Spec;
      case ElemFormat::FP8_E4M3:
        return kFp8E4m3Spec;
      case ElemFormat::FP6_E3M2:
        return kFp6E3m2Spec;
      case ElemFormat::FP6_E2M3:
        return kFp6E2m3Spec;
      case ElemFormat::FP4_E2M1:
        return kFp4Spec;
      case ElemFormat::BF16:
        break;
    }
    DECA_PANIC("BF16 has no minifloat spec (it is stored directly)");
}

std::string
elemFormatName(ElemFormat f)
{
    switch (f) {
      case ElemFormat::BF16:
        return "BF16";
      case ElemFormat::BF8:
        return "BF8";
      case ElemFormat::FP8_E4M3:
        return "FP8-E4M3";
      case ElemFormat::FP6_E3M2:
        return "FP6-E3M2";
      case ElemFormat::FP6_E2M3:
        return "FP6-E2M3";
      case ElemFormat::FP4_E2M1:
        return "MXFP4";
    }
    return "?";
}

} // namespace deca::compress
