#include "compress/weight_matrix.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "compress/quantizer.h"

namespace deca::compress {

WeightMatrix::WeightMatrix(u32 rows, u32 cols)
    : rows_(rows), cols_(cols), data_(u64{rows} * cols)
{
    DECA_ASSERT(rows % kTileRows == 0, "rows must be a multiple of 16");
    DECA_ASSERT(cols % kTileCols == 0, "cols must be a multiple of 32");
}

DenseTile
WeightMatrix::tile(u32 tr, u32 tc) const
{
    DECA_ASSERT(tr < tileRows() && tc < tileCols(), "tile out of range");
    DenseTile t;
    for (u32 r = 0; r < kTileRows; ++r) {
        for (u32 c = 0; c < kTileCols; ++c)
            t.at(r, c) = at(tr * kTileRows + r, tc * kTileCols + c);
    }
    return t;
}

void
WeightMatrix::setTile(u32 tr, u32 tc, const DenseTile &t)
{
    DECA_ASSERT(tr < tileRows() && tc < tileCols(), "tile out of range");
    for (u32 r = 0; r < kTileRows; ++r) {
        for (u32 c = 0; c < kTileCols; ++c)
            at(tr * kTileRows + r, tc * kTileCols + c) = t.at(r, c);
    }
}

double
WeightMatrix::density() const
{
    u64 nz = 0;
    for (u32 r = 0; r < rows_; ++r) {
        for (u32 c = 0; c < cols_; ++c)
            nz += at(r, c).isZero() ? 0 : 1;
    }
    return static_cast<double>(nz) / static_cast<double>(numElems());
}

WeightMatrix
generateWeights(u32 rows, u32 cols, double density, Rng &rng, float sigma)
{
    DECA_ASSERT(density > 0.0 && density <= 1.0, "density out of range");
    WeightMatrix w(rows, cols);
    for (u32 r = 0; r < rows; ++r) {
        for (u32 c = 0; c < cols; ++c) {
            float v = rng.gaussian(sigma);
            // Avoid exact zeros among kept weights so the bitmask density
            // is exactly what pruning dictates.
            if (v == 0.0f)
                v = sigma * 0.01f;
            w.at(r, c) = Bf16::fromFloat(v);
        }
    }
    if (density < 1.0)
        magnitudePrune(w, density);
    return w;
}

void
magnitudePrune(WeightMatrix &w, double density)
{
    DECA_ASSERT(density > 0.0 && density <= 1.0, "density out of range");
    if (density >= 1.0)
        return;
    const u64 n = w.numElems();
    const u64 keep = static_cast<u64>(std::llround(density * n));
    if (keep == n)
        return;

    std::vector<float> mags;
    mags.reserve(n);
    for (u32 r = 0; r < w.rows(); ++r) {
        for (u32 c = 0; c < w.cols(); ++c)
            mags.push_back(std::abs(w.at(r, c).toFloat()));
    }
    // Threshold = magnitude of the (n-keep)-th smallest element.
    std::nth_element(mags.begin(), mags.begin() + (n - keep), mags.end());
    const float threshold = mags[n - keep];

    // Prune strictly-below-threshold first, then trim ties to hit the
    // exact count.
    u64 pruned = 0;
    const u64 target = n - keep;
    for (u32 r = 0; r < w.rows() && pruned < target; ++r) {
        for (u32 c = 0; c < w.cols() && pruned < target; ++c) {
            if (std::abs(w.at(r, c).toFloat()) < threshold &&
                !w.at(r, c).isZero()) {
                w.at(r, c) = Bf16();
                ++pruned;
            }
        }
    }
    for (u32 r = 0; r < w.rows() && pruned < target; ++r) {
        for (u32 c = 0; c < w.cols() && pruned < target; ++c) {
            if (!w.at(r, c).isZero() &&
                std::abs(w.at(r, c).toFloat()) <= threshold) {
                w.at(r, c) = Bf16();
                ++pruned;
            }
        }
    }
}

CompressedMatrix::CompressedMatrix(const WeightMatrix &w,
                                   const CompressionScheme &scheme)
    : scheme_(scheme), tile_rows_(w.tileRows()), tile_cols_(w.tileCols())
{
    tiles_.reserve(w.numTiles());
    for (u32 tr = 0; tr < tile_rows_; ++tr) {
        for (u32 tc = 0; tc < tile_cols_; ++tc)
            tiles_.push_back(compressTile(w.tile(tr, tc), scheme));
    }
}

u64
CompressedMatrix::totalBytes() const
{
    u64 total = 0;
    for (const auto &t : tiles_)
        total += t.totalBytes();
    return total;
}

double
CompressedMatrix::measuredCompressionFactor() const
{
    const u64 dense_bytes = u64{tile_rows_} * tile_cols_ * kTileBytes;
    return static_cast<double>(dense_bytes) /
           static_cast<double>(totalBytes());
}

} // namespace deca::compress
