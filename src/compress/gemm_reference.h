/**
 * @file
 * Functional GeMM reference: the computation the TMUL performs on each
 * tile pair (A[N×32] × W[16×32]^T accumulated into C[N×16], Sec. 2.3) and
 * a whole-matrix GeMM built from it. Used by examples and end-to-end
 * correctness tests of the decompression paths.
 */

#ifndef DECA_COMPRESS_GEMM_REFERENCE_H
#define DECA_COMPRESS_GEMM_REFERENCE_H

#include <vector>

#include "common/bf16.h"
#include "compress/tile.h"
#include "compress/weight_matrix.h"

namespace deca::compress {

/** A small row-major float matrix for activations/outputs. */
class FloatMatrix
{
  public:
    FloatMatrix(u32 rows, u32 cols)
        : rows_(rows), cols_(cols), data_(u64{rows} * cols, 0.0f)
    {}

    u32 rows() const { return rows_; }
    u32 cols() const { return cols_; }
    float &at(u32 r, u32 c) { return data_[u64{r} * cols_ + c]; }
    float at(u32 r, u32 c) const { return data_[u64{r} * cols_ + c]; }

  private:
    u32 rows_;
    u32 cols_;
    std::vector<float> data_;
};

/**
 * One TMUL tile operation: accumulate A(N×32) × W(16×32)^T into C(N×16).
 * A rows are the batch; W rows are output features.
 */
void tmulTileOp(const FloatMatrix &a, u32 a_col0, const DenseTile &w,
                FloatMatrix &c, u32 c_col0);

/**
 * Full GeMM Y(N×M) = X(N×K) × W(M×K)^T over a dense weight matrix, built
 * from TMUL tile operations (golden model).
 */
FloatMatrix gemmReference(const FloatMatrix &x, const WeightMatrix &w);

/**
 * Same GeMM over a *compressed* weight matrix: each tile is decompressed
 * with the golden decompressor before the TMUL op. This is the functional
 * contract both the software kernel and DECA must satisfy.
 */
FloatMatrix gemmCompressed(const FloatMatrix &x, const CompressedMatrix &cw);

} // namespace deca::compress

#endif // DECA_COMPRESS_GEMM_REFERENCE_H
