#include "compress/gemm_reference.h"

#include "common/logging.h"
#include "compress/reference_decompress.h"

namespace deca::compress {

void
tmulTileOp(const FloatMatrix &a, u32 a_col0, const DenseTile &w,
           FloatMatrix &c, u32 c_col0)
{
    DECA_ASSERT(a_col0 + kTileCols <= a.cols(), "A slice out of range");
    DECA_ASSERT(c_col0 + kTileRows <= c.cols(), "C slice out of range");
    for (u32 n = 0; n < a.rows(); ++n) {
        for (u32 m = 0; m < kTileRows; ++m) {
            float acc = c.at(n, c_col0 + m);
            for (u32 k = 0; k < kTileCols; ++k)
                acc += a.at(n, a_col0 + k) * w.at(m, k).toFloat();
            c.at(n, c_col0 + m) = acc;
        }
    }
}

FloatMatrix
gemmReference(const FloatMatrix &x, const WeightMatrix &w)
{
    DECA_ASSERT(x.cols() == w.cols(), "inner dimensions must match");
    FloatMatrix y(x.rows(), w.rows());
    for (u32 tr = 0; tr < w.tileRows(); ++tr) {
        for (u32 tc = 0; tc < w.tileCols(); ++tc) {
            tmulTileOp(x, tc * kTileCols, w.tile(tr, tc), y,
                       tr * kTileRows);
        }
    }
    return y;
}

FloatMatrix
gemmCompressed(const FloatMatrix &x, const CompressedMatrix &cw)
{
    DECA_ASSERT(x.cols() == cw.tileCols() * kTileCols,
                "inner dimensions must match");
    FloatMatrix y(x.rows(), cw.tileRows() * kTileRows);
    for (u32 tr = 0; tr < cw.tileRows(); ++tr) {
        for (u32 tc = 0; tc < cw.tileCols(); ++tc) {
            const DenseTile w = referenceDecompress(cw.tile(tr, tc));
            tmulTileOp(x, tc * kTileCols, w, y, tr * kTileRows);
        }
    }
    return y;
}

} // namespace deca::compress
