#include "compress/structured.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace deca::compress {

void
structuredPrune(WeightMatrix &w, u32 n, u32 m)
{
    DECA_ASSERT(n >= 1 && n < m, "need 1 <= N < M");
    DECA_ASSERT(w.cols() % m == 0, "M must divide the row length");
    std::vector<std::pair<float, u32>> group(m);
    for (u32 r = 0; r < w.rows(); ++r) {
        for (u32 g = 0; g < w.cols(); g += m) {
            for (u32 j = 0; j < m; ++j) {
                group[j] = {std::abs(w.at(r, g + j).toFloat()), j};
            }
            // Keep the n largest magnitudes; zero the rest.
            std::partial_sort(group.begin(), group.begin() + n,
                              group.end(), std::greater<>());
            for (u32 j = n; j < m; ++j)
                w.at(r, g + group[j].second) = Bf16();
        }
    }
}

bool
checkStructured(const WeightMatrix &w, u32 n, u32 m)
{
    for (u32 r = 0; r < w.rows(); ++r) {
        for (u32 g = 0; g < w.cols(); g += m) {
            u32 nz = 0;
            for (u32 j = 0; j < m; ++j)
                nz += w.at(r, g + j).isZero() ? 0 : 1;
            if (nz > n)
                return false;
        }
    }
    return true;
}

CompressionScheme
schemeStructured(ElemFormat format, u32 n, u32 m)
{
    CompressionScheme s;
    s.name = elemFormatName(format) + "_" + std::to_string(n) + ":" +
             std::to_string(m);
    s.format = format;
    s.density = static_cast<double>(n) / m;
    return s;
}

} // namespace deca::compress
