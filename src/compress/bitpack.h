/**
 * @file
 * Bit-level packing of quantized element codes into the nonzero array.
 *
 * Codes of 1..16 bits are packed little-endian-first into a byte stream,
 * matching a compact memory image with no padding between elements.
 */

#ifndef DECA_COMPRESS_BITPACK_H
#define DECA_COMPRESS_BITPACK_H

#include <vector>

#include "common/types.h"

namespace deca::compress {

/** Append the low `bits` bits of `code` to the packed stream. */
class BitPacker
{
  public:
    void append(u32 code, u32 bits);

    /** Flush and return the packed bytes (tail padded with zero bits). */
    std::vector<u8> finish();

    u64 bitCount() const { return bit_count_; }

  private:
    std::vector<u8> bytes_;
    u64 bit_count_ = 0;
};

/** Sequentially extract fixed-width codes from a packed stream. */
class BitUnpacker
{
  public:
    explicit BitUnpacker(const std::vector<u8> &bytes) : bytes_(bytes) {}

    /** Read the next `bits`-wide code. */
    u32 next(u32 bits);

    /** Read the code at element index i of width `bits` (random access). */
    u32 at(u64 i, u32 bits) const;

    u64 bitPos() const { return bit_pos_; }

  private:
    const std::vector<u8> &bytes_;
    u64 bit_pos_ = 0;
};

} // namespace deca::compress

#endif // DECA_COMPRESS_BITPACK_H
