#include "compress/reference_decompress.h"

#include <cmath>

#include "common/logging.h"
#include "compress/bitpack.h"
#include "compress/quantizer.h"

namespace deca::compress {

DenseTile
referenceDecompress(const CompressedTile &ct)
{
    DenseTile out;
    BitUnpacker unpacker(ct.data);
    const u32 qbits = ct.scheme.quantBits();

    u32 consumed = 0;
    for (u32 i = 0; i < kTileElems; ++i) {
        const bool present = ct.scheme.sparse() ? ct.bitmask.get(i) : true;
        if (!present) {
            out[i] = Bf16();  // explicit zero inserted by expansion
            continue;
        }
        const u32 code = unpacker.next(qbits);
        ++consumed;
        float v = dequantizeCode(code, ct.scheme);
        if (ct.scheme.groupQuant) {
            const float scale =
                e8m0Decode(ct.scales[i / ct.scheme.groupSize]);
            v *= scale;
        }
        // Canonicalize negative zero (a nonzero weight that quantized to
        // the zero code) so decompressed zeros are bit-identical to
        // pruned zeros and recompression is idempotent.
        out[i] = v == 0.0f ? Bf16() : Bf16::fromFloat(v);
    }
    DECA_ASSERT(consumed == ct.numNonzeros,
                "nonzero count mismatch during decompression");
    return out;
}

DenseTile
roundTrip(const DenseTile &tile, const CompressionScheme &scheme)
{
    return referenceDecompress(compressTile(tile, scheme));
}

float
maxAbsError(const DenseTile &a, const DenseTile &b)
{
    float worst = 0.0f;
    for (u32 i = 0; i < kTileElems; ++i) {
        const float e = std::abs(a[i].toFloat() - b[i].toFloat());
        if (e > worst)
            worst = e;
    }
    return worst;
}

} // namespace deca::compress
