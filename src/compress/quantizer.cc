#include "compress/quantizer.h"

#include <cmath>

#include "common/logging.h"
#include "compress/bitpack.h"

namespace deca::compress {

u32
quantizeValue(float value, const CompressionScheme &scheme, float group_scale)
{
    if (scheme.format == ElemFormat::BF16) {
        return Bf16::fromFloat(value).bits();
    }
    const float scaled = scheme.groupQuant ? value / group_scale : value;
    return minifloatEncode(elemFormatSpec(scheme.format), scaled);
}

float
dequantizeCode(u32 code, const CompressionScheme &scheme)
{
    if (scheme.format == ElemFormat::BF16) {
        return Bf16::fromBits(static_cast<u16>(code)).toFloat();
    }
    return minifloatDecode(elemFormatSpec(scheme.format), code);
}

std::vector<u8>
computeGroupScales(const DenseTile &tile, const CompressionScheme &scheme)
{
    DECA_ASSERT(scheme.groupQuant);
    DECA_ASSERT(kTileElems % scheme.groupSize == 0,
                "group size must divide the tile");
    const u32 num_groups = kTileElems / scheme.groupSize;
    const i32 elem_max_exp = elemFormatSpec(scheme.format).maxExp();

    std::vector<u8> scales(num_groups);
    for (u32 g = 0; g < num_groups; ++g) {
        float max_abs = 0.0f;
        for (u32 j = 0; j < scheme.groupSize; ++j) {
            const float v =
                std::abs(tile[g * scheme.groupSize + j].toFloat());
            if (v > max_abs)
                max_abs = v;
        }
        scales[g] = mxChooseScale(max_abs, elem_max_exp);
    }
    return scales;
}

CompressedTile
compressTile(const DenseTile &tile, const CompressionScheme &scheme)
{
    CompressedTile out;
    out.scheme = scheme;

    if (scheme.groupQuant)
        out.scales = computeGroupScales(tile, scheme);

    BitPacker packer;
    const u32 qbits = scheme.quantBits();
    for (u32 i = 0; i < kTileElems; ++i) {
        const float v = tile[i].toFloat();
        const bool nonzero = !tile[i].isZero();
        if (scheme.sparse()) {
            out.bitmask.set(i, nonzero);
            if (!nonzero)
                continue;
        }
        float scale = 1.0f;
        if (scheme.groupQuant)
            scale = e8m0Decode(out.scales[i / scheme.groupSize]);
        packer.append(quantizeValue(v, scheme, scale), qbits);
        ++out.numNonzeros;
    }
    out.data = packer.finish();
    return out;
}

} // namespace deca::compress
