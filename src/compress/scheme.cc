#include "compress/scheme.h"

#include <cstdio>

#include "common/logging.h"

namespace deca::compress {

namespace {

std::string
densitySuffix(double density)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "_%.0f%%", density * 100.0);
    return buf;
}

} // namespace

CompressionScheme
schemeBf16()
{
    CompressionScheme s;
    s.name = "BF16";
    s.format = ElemFormat::BF16;
    s.density = 1.0;
    return s;
}

CompressionScheme
schemeQ16(double density)
{
    DECA_ASSERT(density > 0.0 && density < 1.0);
    CompressionScheme s;
    s.name = "Q16" + densitySuffix(density);
    s.format = ElemFormat::BF16;
    s.density = density;
    return s;
}

CompressionScheme
schemeQ8Dense()
{
    CompressionScheme s;
    s.name = "Q8";
    s.format = ElemFormat::BF8;
    s.density = 1.0;
    return s;
}

CompressionScheme
schemeQ8(double density)
{
    DECA_ASSERT(density > 0.0 && density < 1.0);
    CompressionScheme s;
    s.name = "Q8" + densitySuffix(density);
    s.format = ElemFormat::BF8;
    s.density = density;
    return s;
}

CompressionScheme
schemeMxfp4()
{
    CompressionScheme s;
    s.name = "Q4";
    s.format = ElemFormat::FP4_E2M1;
    s.density = 1.0;
    s.groupQuant = true;
    s.groupSize = kMxGroupSize;
    return s;
}

CompressionScheme
schemeMxfp4Sparse(double density)
{
    DECA_ASSERT(density > 0.0 && density < 1.0);
    CompressionScheme s;
    s.name = "Q4" + densitySuffix(density);
    s.format = ElemFormat::FP4_E2M1;
    s.density = density;
    s.groupQuant = true;
    s.groupSize = kMxGroupSize;
    return s;
}

std::vector<CompressionScheme>
paperSchemes()
{
    return {
        schemeQ16(0.50), schemeQ8Dense(), schemeQ16(0.30), schemeQ8(0.50),
        schemeMxfp4(),   schemeQ16(0.20), schemeQ8(0.30),  schemeQ16(0.10),
        schemeQ8(0.20),  schemeQ16(0.05), schemeQ8(0.10),  schemeQ8(0.05),
    };
}

std::vector<CompressionScheme>
paperSparseSchemes()
{
    std::vector<CompressionScheme> out;
    for (auto &s : paperSchemes()) {
        if (s.sparse())
            out.push_back(s);
    }
    return out;
}

} // namespace deca::compress
