/**
 * @file
 * Quantized element formats supported by the compression pipeline.
 *
 * DECA is programmable for any <=8-bit LUT-expressible format (Sec. 6.1);
 * we enumerate the formats the paper evaluates (BF16, BF8, MXFP4) plus a
 * few extra OCP formats that exercise DECA's generality claims.
 */

#ifndef DECA_COMPRESS_ELEMENT_FORMAT_H
#define DECA_COMPRESS_ELEMENT_FORMAT_H

#include <string>

#include "common/minifloat.h"
#include "common/types.h"

namespace deca::compress {

/** Storage format of one weight element. */
enum class ElemFormat
{
    BF16,     ///< Uncompressed 16-bit brain float (no LUT needed).
    BF8,      ///< E5M2 8-bit brain float (paper's Q8).
    FP8_E4M3, ///< OCP FP8 E4M3 variant.
    FP6_E3M2, ///< OCP FP6 variant.
    FP6_E2M3, ///< OCP FP6 variant.
    FP4_E2M1, ///< OCP MXFP4 element format (paper's Q4).
};

/** Bit width of the element format. */
constexpr u32
elemFormatBits(ElemFormat f)
{
    switch (f) {
      case ElemFormat::BF16:
        return 16;
      case ElemFormat::BF8:
      case ElemFormat::FP8_E4M3:
        return 8;
      case ElemFormat::FP6_E3M2:
      case ElemFormat::FP6_E2M3:
        return 6;
      case ElemFormat::FP4_E2M1:
        return 4;
    }
    return 16;
}

/** Minifloat spec for sub-16-bit formats. Must not be called for BF16. */
const MinifloatSpec &elemFormatSpec(ElemFormat f);

/** Human-readable name ("BF8", "MXFP4", ...). */
std::string elemFormatName(ElemFormat f);

} // namespace deca::compress

#endif // DECA_COMPRESS_ELEMENT_FORMAT_H
