#include "compress/bitpack.h"

#include "common/logging.h"

namespace deca::compress {

void
BitPacker::append(u32 code, u32 bits)
{
    DECA_ASSERT(bits >= 1 && bits <= 16, "code width out of range");
    for (u32 b = 0; b < bits; ++b) {
        const u64 pos = bit_count_ + b;
        const u64 byte = pos >> 3;
        if (byte >= bytes_.size())
            bytes_.push_back(0);
        if ((code >> b) & 1u)
            bytes_[byte] |= static_cast<u8>(1u << (pos & 7));
    }
    bit_count_ += bits;
}

std::vector<u8>
BitPacker::finish()
{
    return std::move(bytes_);
}

u32
BitUnpacker::next(u32 bits)
{
    const u32 v = at(bit_pos_ / bits, bits);
    bit_pos_ += bits;
    return v;
}

u32
BitUnpacker::at(u64 i, u32 bits) const
{
    DECA_ASSERT(bits >= 1 && bits <= 16, "code width out of range");
    const u64 start = i * bits;
    DECA_ASSERT((start + bits + 7) / 8 <= bytes_.size(),
                "unpack past end of stream");
    u32 v = 0;
    for (u32 b = 0; b < bits; ++b) {
        const u64 pos = start + b;
        if ((bytes_[pos >> 3] >> (pos & 7)) & 1u)
            v |= 1u << b;
    }
    return v;
}

} // namespace deca::compress
