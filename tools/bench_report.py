#!/usr/bin/env python3
"""Run the event-core benchmarks and write BENCH_event_core.json.

Usage:
  tools/bench_report.py [--build-dir build] [--output BENCH_event_core.json]
                        [--repeat N] [--quick]

Collects, from an already-built tree:
  * bench/event_core_bench — self-timed event-churn and FetchStream
    line-issue microbenchmarks (dependency-free; emits JSON itself),
  * wall time of `decasim run all --jobs=1` and `--jobs=8` (best of
    --repeat runs; the scenario campaign is deterministic, so best-of
    isolates scheduler noise),
  * wall time of the sampled tier: `run all --set sample=1` and the
    Fig. 12-14 trio in both tiers, so the trajectory tracks the
    full-vs-sampled gap alongside the event-core numbers,
  * the dse_campaign scenario in two cuts (analytic-only via
    `--set top_k=0`, then full), deriving analytic points/sec and the
    sampled-validation seconds.

The report is one JSON object with host/git metadata so CI can archive
one file per run and the perf trajectory stays machine-readable.
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import time


def run(cmd, **kw):
    return subprocess.run(cmd, check=True, stdout=subprocess.PIPE,
                          text=True, **kw)


def git_rev(repo):
    try:
        out = run(["git", "-C", repo, "rev-parse", "--short", "HEAD"])
        rev = out.stdout.strip()
        dirty = subprocess.run(
            ["git", "-C", repo, "diff", "--quiet", "HEAD"]).returncode
        return rev + ("-dirty" if dirty else "")
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def time_decasim(decasim, args, repeat):
    best = None
    for _ in range(repeat):
        t0 = time.monotonic()
        subprocess.run([decasim, "run"] + args, check=True,
                       stdout=subprocess.DEVNULL)
        dt = time.monotonic() - t0
        best = dt if best is None else min(best, dt)
    return best


def campaign_metrics(decasim, repeat):
    """Time the dse_campaign scenario in two cuts — analytic-only
    (--set top_k=0 skips the simulator validation) and full — and
    derive analytic points/sec from the evaluated-point count the
    scenario prints. The validation cost is the difference."""
    analytic_args = ["dse_campaign", "--threads=8", "--set", "top_k=0"]
    out = run([decasim, "run"] + analytic_args).stdout
    points = None
    for line in out.splitlines():
        if line.startswith("points evaluated,"):
            points = int(line.split(",", 1)[1])
    analytic = time_decasim(decasim, analytic_args, repeat)
    full = time_decasim(decasim, ["dse_campaign", "--threads=8"],
                        repeat)
    return {
        "points_evaluated": points,
        "analytic_seconds": round(analytic, 3),
        "points_per_sec": (round(points / analytic)
                           if points and analytic > 0 else None),
        "validation_seconds": round(max(0.0, full - analytic), 3),
        "total_seconds": round(full, 3),
    }


def main():
    ap = argparse.ArgumentParser(
        description="event-core perf report -> BENCH_event_core.json")
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--output", default="BENCH_event_core.json")
    ap.add_argument("--repeat", type=int, default=3,
                    help="timed repetitions per measurement "
                         "(best-of; default 3)")
    ap.add_argument("--quick", action="store_true",
                    help="shrunken microbenchmarks and --repeat 1, "
                         "for smoke tests")
    args = ap.parse_args()
    if args.quick:
        args.repeat = 1

    build = os.path.abspath(args.build_dir)
    bench = os.path.join(build, "bench", "event_core_bench")
    decasim = os.path.join(build, "decasim")
    for exe in (bench, decasim):
        if not os.access(exe, os.X_OK):
            sys.exit(f"error: {exe} not built (cmake --build "
                     f"{args.build_dir} first)")

    repo = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(repo)

    micro = None
    for i in range(args.repeat):
        cmd = [bench] + (["--quick"] if args.quick else [])
        sample = json.loads(run(cmd).stdout)
        if micro is None:
            micro = sample
        else:
            for name, fields in sample.items():
                if fields["seconds"] < micro[name]["seconds"]:
                    micro[name] = fields

    report = {
        "schema": "deca-bench-event-core/1",
        "git": git_rev(repo),
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
            "cpus": os.cpu_count(),
        },
        "repeat": args.repeat,
        "quick": args.quick,
        "micro": micro,
        "run_all": {
            "jobs1_seconds": round(
                time_decasim(decasim, ["all", "--jobs=1"],
                             args.repeat), 3),
            "jobs8_seconds": round(
                time_decasim(decasim, ["all", "--jobs=8"],
                             args.repeat), 3),
            "sampled_jobs1_seconds": round(
                time_decasim(decasim,
                             ["all", "--jobs=1", "--set", "sample=1"],
                             args.repeat), 3),
        },
        # Campaign DSE: analytic sweep throughput and the sampled
        # top-K validation's wall-clock share.
        "dse_campaign": campaign_metrics(decasim, args.repeat),
        # Fig. 12-14 in both tiers: the pair the sampled tier's
        # wall-clock acceptance is stated against.
        "fig_trio": {
            "full_seconds": round(
                time_decasim(decasim, ["fig12", "fig13", "fig14"],
                             args.repeat), 3),
            "sampled_seconds": round(
                time_decasim(decasim,
                             ["fig12", "fig13", "fig14",
                              "--set", "sample=1"],
                             args.repeat), 3),
        },
    }

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.output}:")
    json.dump(report, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
