#!/usr/bin/env python3
"""Diff two decasim-run/1 JSON manifests cell-by-cell.

Usage:
  tools/compare_runs.py A.json B.json [--rtol R] [--table-rtol GLOB=R]...

Structural fields (scenario names, statuses, section order, table
shapes, prose) must match exactly. Table cells are compared
numerically when both sides parse as numbers (a trailing '%' or an
embedded number like "{W=32, L=8}" is handled by tokenizing the cell);
non-numeric tokens must match exactly. The default relative tolerance
is 0 (bit-identical rendering); --rtol loosens every table and
--table-rtol GLOB=R overrides it for tables whose title matches GLOB
(fnmatch pattern, first match wins). --atol adds an absolute slack a
numeric pair may differ by regardless of magnitude (for discrete
count cells where one scheduling quantum shifts the value). Prose
sections match exactly by default; --prose-rtol compares their
numeric tokens with a tolerance too (the surrounding text must still
match exactly), which lets a sampled-tier manifest diff cleanly
against a full-simulation one.

Timing fields (elapsed_ms) and run metadata (jobs, threads) are
ignored: two runs of the same build never agree on those.

Exit status: 0 when the manifests agree, 1 on any violation (each
violation is printed), 2 on usage/parse errors.
"""

import argparse
import fnmatch
import json
import re
import sys

# A number with optional sign/decimal/exponent, as decasim renders
# them. Splitting a cell on this yields alternating text/number
# tokens.
NUM_RE = re.compile(r"[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?")


def load(path):
    try:
        with open(path) as f:
            m = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read manifest {path}: {e}")
    if m.get("schema") == "decasim-run/1":
        return m
    # `decasim run <one scenario> --format=json` emits the bare
    # scenario object; wrap it so single-scenario runs diff too.
    if "name" in m and "sections" in m:
        return {"schema": "decasim-run/1", "scenarios": [m]}
    sys.exit(f"error: {path}: unexpected schema {m.get('schema')!r}")


def tol_for(title, default, overrides):
    for glob, r in overrides:
        if fnmatch.fnmatch(title, glob):
            return r
    return default


def cells_match(a, b, rtol, atol=0.0):
    """True when two rendered cells agree: identical non-numeric
    structure, numeric tokens within rtol (or within atol
    absolutely)."""
    if a == b:
        return True
    if NUM_RE.split(a) != NUM_RE.split(b):
        return False
    for na, nb in zip(NUM_RE.findall(a), NUM_RE.findall(b)):
        fa, fb = float(na), float(nb)
        if fa == fb or abs(fa - fb) <= atol:
            continue
        denom = max(abs(fa), abs(fb))
        if denom == 0 or abs(fa - fb) / denom > rtol:
            return False
    return True


def compare_tables(scname, idx, ta, tb, rtol, atol, errors):
    where = f"{scname}: section {idx} table {ta.get('title')!r}"
    for field in ("title", "columns"):
        if ta.get(field) != tb.get(field):
            errors.append(f"{where}: {field} differs: "
                          f"{ta.get(field)!r} vs {tb.get(field)!r}")
            return
    ra, rb = ta.get("rows", []), tb.get("rows", [])
    if len(ra) != len(rb):
        errors.append(f"{where}: row count {len(ra)} vs {len(rb)}")
        return
    for r, (rowa, rowb) in enumerate(zip(ra, rb)):
        if len(rowa) != len(rowb):
            errors.append(f"{where}: row {r} width "
                          f"{len(rowa)} vs {len(rowb)}")
            continue
        for c, (ca, cb) in enumerate(zip(rowa, rowb)):
            if not cells_match(ca, cb, rtol, atol):
                col = ta["columns"][c] if c < len(ta["columns"]) else c
                errors.append(f"{where}: row {r} [{col}]: "
                              f"{ca!r} vs {cb!r} (rtol {rtol:g})")


def compare(ma, mb, default_rtol, overrides, atol=0.0,
            prose_rtol=None, atol_overrides=()):
    errors = []
    sa, sb = ma.get("scenarios", []), mb.get("scenarios", [])
    names_a = [s["name"] for s in sa]
    names_b = [s["name"] for s in sb]
    if names_a != names_b:
        errors.append(f"scenario lists differ: {names_a} vs {names_b}")
        return errors
    for a, b in zip(sa, sb):
        name = a["name"]
        if a.get("status") != b.get("status"):
            errors.append(f"{name}: status {a.get('status')} vs "
                          f"{b.get('status')}")
        seca, secb = a.get("sections", []), b.get("sections", [])
        if [s["type"] for s in seca] != [s["type"] for s in secb]:
            errors.append(f"{name}: section structure differs")
            continue
        for i, (xa, xb) in enumerate(zip(seca, secb)):
            if xa["type"] == "table":
                title = xa["table"].get("title", "")
                rtol = tol_for(title, default_rtol, overrides)
                t_atol = tol_for(title, atol, atol_overrides)
                compare_tables(name, i, xa["table"], xb["table"],
                               rtol, t_atol, errors)
            elif xa != xb:
                if (prose_rtol is not None
                        and xa.get("type") == "prose"
                        and cells_match(xa.get("text", ""),
                                        xb.get("text", ""),
                                        prose_rtol, atol)):
                    continue
                errors.append(f"{name}: section {i} "
                              f"({xa['type']}) differs")
    return errors


def main():
    ap = argparse.ArgumentParser(
        description="cell-by-cell diff of two decasim JSON manifests")
    ap.add_argument("a")
    ap.add_argument("b")
    ap.add_argument("--rtol", type=float, default=0.0,
                    help="relative tolerance for numeric cells "
                         "(default 0: exact)")
    ap.add_argument("--table-rtol", action="append", default=[],
                    metavar="GLOB=R",
                    help="per-table override, e.g. 'Figure 14*=0.01'")
    ap.add_argument("--atol", type=float, default=0.0,
                    help="absolute slack for numeric tokens "
                         "(default 0), for discrete count cells")
    ap.add_argument("--table-atol", action="append", default=[],
                    metavar="GLOB=A",
                    help="per-table absolute slack, e.g. "
                         "'Table 3*=1' for integer-percent cells "
                         "that flip one rendering quantum")
    ap.add_argument("--prose-rtol", type=float, default=None,
                    metavar="R",
                    help="compare numeric tokens inside prose "
                         "sections within R instead of exactly")
    args = ap.parse_args()

    def parse_overrides(specs, flag):
        out = []
        for spec in specs:
            glob, sep, r = spec.rpartition("=")
            if not sep:
                ap.error(f"{flag} needs GLOB=VALUE, got {spec!r}")
            try:
                out.append((glob, float(r)))
            except ValueError:
                ap.error(f"bad tolerance in {spec!r}")
        return out

    overrides = parse_overrides(args.table_rtol, "--table-rtol")
    atol_overrides = parse_overrides(args.table_atol, "--table-atol")

    errors = compare(load(args.a), load(args.b), args.rtol, overrides,
                     args.atol, args.prose_rtol, atol_overrides)
    for e in errors:
        print(f"MISMATCH: {e}", file=sys.stderr)
    if errors:
        print(f"{len(errors)} violation(s) between {args.a} and "
              f"{args.b}", file=sys.stderr)
        return 1
    print(f"manifests agree: {args.a} == {args.b} "
          f"(rtol {args.rtol:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
