#!/usr/bin/env python3
"""Blocking format gate for the DECA tree.

Enforces the mechanical style invariants every file in the tree has
been verified against (the full pass is committed):

  - no tab characters,
  - no trailing whitespace,
  - no carriage returns,
  - lines at most 79 columns,
  - files end with exactly one newline.

The richer layout rules (brace placement, 4-space indent, gem5-style
2-space case labels) are described by .clang-format, but that tool's
dry run stays advisory: clang-format cannot express the tree's
case-label indentation, so its diff is a review signal rather than a
gate. This checker is the gate; it must pass on every commit.

Usage: python3 tools/check_format.py [root]
"""

import pathlib
import sys

MAX_COLS = 79
SUFFIXES = {".cc", ".h", ".cpp"}
DIRS = ["src", "tests", "bench", "examples"]


def check_file(path: pathlib.Path) -> list[str]:
    problems = []
    data = path.read_bytes()
    if b"\r" in data:
        problems.append(f"{path}: carriage return")
    if data and not data.endswith(b"\n"):
        problems.append(f"{path}: missing trailing newline")
    if data.endswith(b"\n\n"):
        problems.append(f"{path}: multiple trailing newlines")
    for lineno, line in enumerate(data.split(b"\n"), start=1):
        if b"\t" in line:
            problems.append(f"{path}:{lineno}: tab character")
        if line != line.rstrip():
            problems.append(f"{path}:{lineno}: trailing whitespace")
        try:
            cols = len(line.decode("utf-8"))
        except UnicodeDecodeError:
            problems.append(f"{path}:{lineno}: invalid UTF-8")
            continue
        if cols > MAX_COLS:
            problems.append(
                f"{path}:{lineno}: {cols} columns (max {MAX_COLS})")
    return problems


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    problems = []
    checked = 0
    for d in DIRS:
        for path in sorted((root / d).rglob("*")):
            if path.suffix in SUFFIXES and path.is_file():
                checked += 1
                problems.extend(check_file(path))
    for p in problems:
        print(p)
    print(f"checked {checked} files: "
          f"{'FAIL' if problems else 'ok'} ({len(problems)} problems)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
