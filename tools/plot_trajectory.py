#!/usr/bin/env python3
"""Plot the perf/accuracy trajectory across archived run artifacts.

Usage:
  tools/plot_trajectory.py INPUT.json... [--svg trajectory.svg]
                           [--csv trajectory.csv]
                           [--cell SCENARIO:TABLE_GLOB:ROW:COL]...

The consumer half of the compare_runs.py idea: compare_runs.py gates
two runs, this tool charts many. Inputs are any mix of

  * BENCH_event_core.json reports (schema deca-bench-event-core/1):
    contributes ns-per-event/ns-per-line microbenchmark series and the
    timed `run all` wall times, labelled by the report's git rev;
  * decasim-run/1 manifests: contributes the summed scenario
    elapsed_ms, labelled by the file name, plus any table cells named
    by --cell (fnmatch on the table title; ROW/COL are 0-based row
    index and column name) so accuracy headlines can ride the same
    trajectory, e.g. --cell 'fig14:Figure 14*:1:DECA'.

Inputs are plotted in command-line order (pass them oldest-first).
Metrics have different units, so the SVG indexes every series to its
first value (first = 100, one shared axis); the CSV twin carries the
raw values and is the machine-readable/table view of the same data.

Stdlib only — the SVG is written directly, styled to the validated
default chart palette.
"""

import argparse
import fnmatch
import json
import os
import sys

# Validated categorical palette (fixed slot order, light surface) and
# text/surface tokens; see the dataviz palette reference. Series
# identity follows the metric, never its rank in a particular run.
PALETTE = ["#2a78d6", "#eb6834", "#1baf7a", "#eda100",
           "#e87ba4", "#008300", "#4a3aa7", "#e34948"]
SURFACE = "#fcfcfb"
TEXT = "#0b0b0b"
TEXT2 = "#52514e"
GRID = "#e8e7e4"

WIDTH, HEIGHT = 880, 440
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 64, 200, 48, 56


def fail(msg):
    sys.exit(f"error: {msg}")


def load_input(path, cells):
    """Returns (label, {metric: value})."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")
    schema = doc.get("schema")
    if schema == "deca-bench-event-core/1":
        label = doc.get("git", os.path.basename(path))
        metrics = {}
        for name, fields in doc.get("micro", {}).items():
            for key in ("ns_per_event", "ns_per_line"):
                if key in fields:
                    metrics[f"{name} ({key.split('_', 1)[0]})"] = \
                        fields[key]
        for key, val in doc.get("run_all", {}).items():
            # The raw sampled-tier wall time retired from the chart
            # when the campaign series below claimed the palette's
            # last slot: the fig-trio speedup already tracks the
            # sampled tier (the CSV history keeps the old points).
            if key == "sampled_jobs1_seconds":
                continue
            metrics[f"run all {key.replace('_seconds', '')} (s)"] = val
        # The Fig. 12-14 tier pair charts as one derived series (the
        # sampled tier's speedup) to stay inside the palette budget
        # and survive machine-speed changes across the history.
        trio = doc.get("fig_trio", {})
        full = trio.get("full_seconds", 0)
        samp = trio.get("sampled_seconds", 0)
        if full > 0 and samp > 0:
            metrics["fig trio sampled speedup (x)"] = full / samp
        # Campaign DSE analytic throughput (derived in bench_report.py
        # from the evaluated-point count over the analytic-only wall
        # time; absent in pre-campaign reports).
        pps = doc.get("dse_campaign", {}).get("points_per_sec", 0)
        if pps:
            metrics["dse_campaign analytic (pts/s)"] = pps
        return label, metrics
    if schema == "decasim-run/1":
        label = os.path.splitext(os.path.basename(path))[0]
        metrics = {}
        elapsed = sum(s.get("elapsed_ms", 0)
                      for s in doc.get("scenarios", []))
        metrics["scenario elapsed (ms)"] = elapsed
        for spec in cells:
            scen, glob, row, col = spec
            for s in doc.get("scenarios", []):
                if s.get("name") != scen:
                    continue
                for sec in s.get("sections", []):
                    if sec.get("type") != "table":
                        continue
                    t = sec["table"]
                    if not fnmatch.fnmatch(t.get("title", ""), glob):
                        continue
                    if col not in t.get("columns", []):
                        fail(f"{path}: table {t['title']!r} has no "
                             f"column {col!r}")
                    ci = t["columns"].index(col)
                    rows = t.get("rows", [])
                    if row >= len(rows):
                        fail(f"{path}: table {t['title']!r} has only "
                             f"{len(rows)} rows")
                    try:
                        val = float(rows[row][ci])
                    except ValueError:
                        fail(f"{path}: cell {rows[row][ci]!r} is not "
                             f"numeric")
                    metrics[f"{scen} {col}[{row}]"] = val
        return label, metrics
    fail(f"{path}: unknown schema {schema!r}")


def write_csv(path, labels, series):
    with open(path, "w") as f:
        f.write("index,label,metric,value\n")
        for metric, points in series.items():
            for i, val in points:
                f.write(f"{i},{labels[i]},{metric},{val:g}\n")


def svg_escape(s):
    return (s.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def write_svg(path, labels, series):
    n = len(labels)
    plot_w = WIDTH - MARGIN_L - MARGIN_R
    plot_h = HEIGHT - MARGIN_T - MARGIN_B

    # Index every series to its first value: one shared axis, units
    # removed, "how did it move" preserved.
    indexed = {}
    for metric, points in series.items():
        base = points[0][1]
        if base == 0:
            continue
        indexed[metric] = [(i, 100.0 * v / base) for i, v in points]
    if not indexed:
        fail("no plottable series (all-zero bases?)")

    vals = [v for pts in indexed.values() for _, v in pts]
    lo, hi = min(vals + [100.0]), max(vals + [100.0])
    pad = max((hi - lo) * 0.1, 2.0)
    lo, hi = lo - pad, hi + pad

    def x(i):
        if n == 1:
            return MARGIN_L + plot_w / 2
        return MARGIN_L + plot_w * i / (n - 1)

    def y(v):
        return MARGIN_T + plot_h * (hi - v) / (hi - lo)

    out = []
    out.append(f'<svg xmlns="http://www.w3.org/2000/svg" '
               f'width="{WIDTH}" height="{HEIGHT}" '
               f'viewBox="0 0 {WIDTH} {HEIGHT}" '
               f'font-family="system-ui, sans-serif">')
    out.append(f'<rect width="{WIDTH}" height="{HEIGHT}" '
               f'fill="{SURFACE}"/>')
    out.append(f'<text x="{MARGIN_L}" y="24" font-size="15" '
               f'fill="{TEXT}" font-weight="600">Perf trajectory '
               f'(indexed, first = 100)</text>')

    # Recessive horizontal grid + axis labels.
    steps = 4
    for k in range(steps + 1):
        v = lo + (hi - lo) * k / steps
        yy = y(v)
        out.append(f'<line x1="{MARGIN_L}" y1="{yy:.1f}" '
                   f'x2="{MARGIN_L + plot_w}" y2="{yy:.1f}" '
                   f'stroke="{GRID}" stroke-width="1"/>')
        out.append(f'<text x="{MARGIN_L - 8}" y="{yy + 4:.1f}" '
                   f'font-size="11" fill="{TEXT2}" '
                   f'text-anchor="end">{v:.0f}</text>')

    # X labels (thinned to at most 8).
    stride = max(1, (n + 7) // 8)
    for i in range(0, n, stride):
        out.append(f'<text x="{x(i):.1f}" '
                   f'y="{MARGIN_T + plot_h + 20}" font-size="11" '
                   f'fill="{TEXT2}" text-anchor="middle">'
                   f'{svg_escape(labels[i][:16])}</text>')

    # Series: 2px lines, 8px markers, legend + direct end labels in
    # text ink (color carries identity via the swatch/marker only).
    for si, (metric, pts) in enumerate(indexed.items()):
        color = PALETTE[si % len(PALETTE)]
        coords = [(x(i), y(v)) for i, v in pts]
        if len(coords) > 1:
            d = " ".join(f"{px:.1f},{py:.1f}" for px, py in coords)
            out.append(f'<polyline points="{d}" fill="none" '
                       f'stroke="{color}" stroke-width="2" '
                       f'stroke-linejoin="round"/>')
        for px, py in coords:
            out.append(f'<circle cx="{px:.1f}" cy="{py:.1f}" r="4" '
                       f'fill="{color}" stroke="{SURFACE}" '
                       f'stroke-width="2"/>')
        ly = MARGIN_T + 16 * si
        lx = MARGIN_L + plot_w + 16
        out.append(f'<rect x="{lx}" y="{ly - 9}" width="10" '
                   f'height="10" rx="2" fill="{color}"/>')
        out.append(f'<text x="{lx + 16}" y="{ly}" font-size="11" '
                   f'fill="{TEXT}">{svg_escape(metric[:26])}</text>')

    out.append("</svg>")
    with open(path, "w") as f:
        f.write("\n".join(out) + "\n")


def main():
    ap = argparse.ArgumentParser(
        description="chart BENCH_event_core.json / decasim manifest "
                    "history as an SVG + CSV trajectory")
    ap.add_argument("inputs", nargs="+",
                    help="artifact JSONs, oldest first")
    ap.add_argument("--svg", default="trajectory.svg")
    ap.add_argument("--csv", default="trajectory.csv")
    ap.add_argument("--cell", action="append", default=[],
                    metavar="SCENARIO:TABLE_GLOB:ROW:COL",
                    help="track one manifest table cell, e.g. "
                         "'fig14:Figure 14*:1:DECA'")
    args = ap.parse_args()

    cells = []
    for spec in args.cell:
        parts = spec.split(":")
        if len(parts) != 4:
            ap.error(f"--cell needs SCENARIO:TABLE_GLOB:ROW:COL, "
                     f"got {spec!r}")
        try:
            cells.append((parts[0], parts[1], int(parts[2]),
                          parts[3]))
        except ValueError:
            ap.error(f"bad row index in {spec!r}")

    labels = []
    series = {}  # metric -> [(input index, value)]
    for path in args.inputs:
        label, metrics = load_input(path, cells)
        idx = len(labels)
        labels.append(label)
        for metric, val in metrics.items():
            series.setdefault(metric, []).append((idx, val))
    if not series:
        fail("no metrics found in the inputs")
    if len(series) > len(PALETTE):
        fail(f"{len(series)} series exceed the {len(PALETTE)}-slot "
             f"palette; narrow the inputs or --cell selections")

    write_csv(args.csv, labels, series)
    write_svg(args.svg, labels, series)
    npts = sum(len(p) for p in series.values())
    print(f"wrote {args.svg} and {args.csv}: {len(series)} series, "
          f"{npts} points from {len(labels)} input(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
